// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design decisions in DESIGN.md §5 and
// raw substrate throughput numbers.
//
//	BenchmarkTable3            fault-outcome distribution under LetGo-E (Table 3)
//	BenchmarkFigure5           LetGo-B vs LetGo-E on the four metrics (Figure 5a-d)
//	BenchmarkMonitorOverhead   run time with vs without the monitor (Section 6.2 ¶1)
//	BenchmarkRepairCost        time spent in the modifier per elided crash (Section 6.2 ¶2)
//	BenchmarkFigure7           C/R efficiency vs checkpoint cost (Figure 7)
//	BenchmarkFigure8           C/R efficiency vs system scale (Figure 8)
//	BenchmarkSection8HPL       the direct-method case study (Section 8)
//	BenchmarkAblation*         D1-D5 design-choice ablations
//	Benchmark{VM,Compiler,...} substrate throughput
//
// Campaign benchmarks report their headline numbers as custom metrics
// (continuability, SDC rates, efficiency gains) so `go test -bench` output
// doubles as the reproduction record; EXPERIMENTS.md interprets them
// against the paper's numbers.
package letgo

import (
	"fmt"
	"testing"

	"github.com/letgo-hpc/letgo/internal/apps"
	"github.com/letgo-hpc/letgo/internal/checkpoint"
	"github.com/letgo-hpc/letgo/internal/core"
	"github.com/letgo-hpc/letgo/internal/debug"
	"github.com/letgo-hpc/letgo/internal/inject"
	"github.com/letgo-hpc/letgo/internal/lang"
	"github.com/letgo-hpc/letgo/internal/pin"
	"github.com/letgo-hpc/letgo/internal/stats"
	"github.com/letgo-hpc/letgo/internal/vm"
)

// benchN is the number of injections per campaign benchmark. The paper
// uses 20000 per app; benchmarks default to a quick-but-meaningful sample
// (raise with: go test -bench Table3 -benchtime 10x for tighter CIs —
// every campaign is deterministic in its seed).
const benchN = 250

func campaign(b *testing.B, appName string, mode InjectionMode, opts *Options) *CampaignResult {
	b.Helper()
	app, ok := AppByName(appName)
	if !ok {
		b.Fatalf("unknown app %s", appName)
	}
	c := &Campaign{App: app, Mode: mode, N: benchN, Seed: 2017, Opts: opts}
	r, err := c.Run()
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable3 regenerates the Table-3 rows: the fault-outcome
// distribution for the five iterative benchmarks under LetGo-E.
func BenchmarkTable3(b *testing.B) {
	for _, app := range IterativeApps() {
		b.Run(app.Name, func(b *testing.B) {
			var r *CampaignResult
			for i := 0; i < b.N; i++ {
				r = campaign(b, app.Name, LetGoE, nil)
			}
			b.ReportMetric(100*r.PCrash, "crash%")
			b.ReportMetric(100*r.Counts.Frac(Benign), "benign%")
			b.ReportMetric(100*r.Counts.Frac(SDC), "sdc%")
			b.ReportMetric(100*r.Counts.Frac(Detected), "detected%")
			b.ReportMetric(100*r.Counts.Frac(DoubleCrash), "dcrash%")
			b.ReportMetric(100*r.Counts.Frac(CBenign), "c_benign%")
			b.ReportMetric(100*r.Counts.Frac(CSDC), "c_sdc%")
			b.ReportMetric(100*r.Counts.Frac(CDetected), "c_detected%")
		})
	}
}

// BenchmarkFigure5 compares LetGo-B and LetGo-E on the four Section-5.3
// metrics for every iterative benchmark (Figure 5a-d).
func BenchmarkFigure5(b *testing.B) {
	for _, app := range IterativeApps() {
		for _, mode := range []InjectionMode{LetGoB, LetGoE} {
			b.Run(fmt.Sprintf("%s/%v", app.Name, mode), func(b *testing.B) {
				var r *CampaignResult
				for i := 0; i < b.N; i++ {
					r = campaign(b, app.Name, mode, nil)
				}
				m := r.Metrics
				b.ReportMetric(m.Continuability, "continuability")
				b.ReportMetric(m.ContinuedDetected, "c_detected")
				b.ReportMetric(m.ContinuedCorrect, "c_correct")
				b.ReportMetric(m.ContinuedSDC, "c_sdc")
			})
		}
	}
}

// BenchmarkMonitorOverhead measures the paper's Section-6.2 claim that
// running under the monitor costs <1%: the same app executed bare and
// under an attached (signal-table-configured, breakpoint-free) debugger.
func BenchmarkMonitorOverhead(b *testing.B) {
	for _, name := range []string{"SNAP", "LULESH"} {
		app, _ := AppByName(name)
		prog, err := app.Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/bare", func(b *testing.B) {
			var retired uint64
			for i := 0; i < b.N; i++ {
				m, err := vm.New(prog, vm.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Run(1 << 30); err != nil {
					b.Fatal(err)
				}
				retired = m.Retired
			}
			b.ReportMetric(float64(retired)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
		})
		b.Run(name+"/monitored", func(b *testing.B) {
			an := pin.Analyze(prog)
			var retired uint64
			for i := 0; i < b.N; i++ {
				m, err := vm.New(prog, vm.Config{})
				if err != nil {
					b.Fatal(err)
				}
				r := core.Attach(m, an, core.Options{Mode: core.ModeEnhanced})
				if res := r.Run(1 << 30); res.Outcome != core.RunCompleted {
					b.Fatalf("monitored run: %+v", res)
				}
				retired = m.Retired
			}
			b.ReportMetric(float64(retired)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkRepairCost measures the time the modifier spends per elided
// crash (the paper's prototype: 2-5 s of gdb/PIN scripting; a native
// implementation is micro-seconds, confirming the paper's argument that
// repair cost is negligible and input-size independent).
func BenchmarkRepairCost(b *testing.B) {
	src := `
		var sink float;
		var junk [8] float;
		func main() {
			var i int;
			for (i = 0; i < 1000; i = i + 1) {
				sink = sink + junk[i * 65536 * 65536];   // wild address every pass
			}
		}
	`
	prog, err := lang.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	an := pin.Analyze(prog)
	b.ResetTimer()
	repairs := 0
	for i := 0; i < b.N; i++ {
		m, err := vm.New(prog, vm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		r := core.Attach(m, an, core.Options{Mode: core.ModeEnhanced, MaxRepairs: 1 << 20})
		res := r.Run(1 << 24)
		repairs += res.Repairs
		var total float64
		for _, ev := range res.Events {
			total += ev.Duration.Seconds()
		}
		b.ReportMetric(total/float64(res.Repairs)*1e9, "ns/repair")
	}
	if repairs == 0 {
		b.Fatal("no repairs happened")
	}
}

// BenchmarkFigure7 regenerates the checkpoint-cost sweep for every
// paper-seeded app, reporting the absolute efficiency gain at each cost.
func BenchmarkFigure7(b *testing.B) {
	for _, app := range PaperApps() {
		b.Run(app.Name, func(b *testing.B) {
			var pts []checkpoint.Point
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = Figure7(app, 2017)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range pts {
				b.ReportMetric(p.LetGo, fmt.Sprintf("eff_letgo_t%.0f", p.X))
				b.ReportMetric(p.Standard, fmt.Sprintf("eff_std_t%.0f", p.X))
			}
		})
	}
}

// BenchmarkFigure8 regenerates the system-scale sweep at the paper's two
// checkpoint costs for CLAMR and PENNANT (the apps shown in Figure 8).
func BenchmarkFigure8(b *testing.B) {
	for _, name := range []string{"CLAMR", "PENNANT"} {
		app, _ := PaperAppByName(name)
		for _, tchk := range []float64{12, 1200} {
			b.Run(fmt.Sprintf("%s/tchk%.0f", name, tchk), func(b *testing.B) {
				var pts []checkpoint.Point
				for i := 0; i < b.N; i++ {
					var err error
					pts, err = Figure8(app, tchk, 2017)
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, p := range pts {
					b.ReportMetric(p.Gain(), fmt.Sprintf("gain_n%.0fk", p.X/1000))
				}
			})
		}
	}
}

// BenchmarkSection8HPL reproduces the direct-method case study: HPL's
// fault profile and the marginal efficiency improvement LetGo brings it.
func BenchmarkSection8HPL(b *testing.B) {
	b.Run("campaign", func(b *testing.B) {
		var r *CampaignResult
		for i := 0; i < b.N; i++ {
			r = campaign(b, "HPL", LetGoE, nil)
		}
		b.ReportMetric(100*r.PCrash, "crash%")
		b.ReportMetric(r.Metrics.Continuability, "continuability")
		b.ReportMetric(100*r.Counts.Frac(SDC), "sdc%")
		b.ReportMetric(100*r.Counts.Frac(CSDC), "c_sdc%")
	})
	b.Run("efficiency", func(b *testing.B) {
		hpl := checkpoint.PaperHPL()
		var std, lg checkpoint.Result
		for i := 0; i < b.N; i++ {
			p := CRParamsFor(hpl, 1200, 0.10, 21600)
			var err error
			std, lg, err = checkpoint.Compare(p, stats.NewRNG(3), checkpoint.DefaultHorizon)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(std.Efficiency(), "eff_std")
		b.ReportMetric(lg.Efficiency(), "eff_letgo")
	})
}

// BenchmarkAblationFill evaluates design decision D1: the Heuristic-I fill
// value (the paper argues for 0 because memory is mostly zeros).
func BenchmarkAblationFill(b *testing.B) {
	for _, c := range []struct {
		name string
		fill uint64
		ffil float64
	}{
		{"zero", 0, 0},
		{"ones", ^uint64(0), -1},
		{"pattern", 0x5555555555555555, 12345.678},
	} {
		b.Run(c.name, func(b *testing.B) {
			opts := &Options{Mode: ModeEnhanced, FillInt: c.fill, FillFloat: c.ffil}
			var r *CampaignResult
			for i := 0; i < b.N; i++ {
				r = campaign(b, "LULESH", LetGoE, opts)
			}
			b.ReportMetric(r.Metrics.ContinuedCorrect, "c_correct")
			b.ReportMetric(r.Metrics.ContinuedSDC, "c_sdc")
		})
	}
}

// BenchmarkAblationHeuristics evaluates D2/D1 jointly: each heuristic
// disabled in turn under otherwise-Enhanced mode.
func BenchmarkAblationHeuristics(b *testing.B) {
	for _, c := range []struct {
		name string
		opts *Options
	}{
		{"full", &Options{Mode: ModeEnhanced}},
		{"noH1", &Options{Mode: ModeEnhanced, DisableH1: true}},
		{"noH2", &Options{Mode: ModeEnhanced, DisableH2: true}},
		{"neither", &Options{Mode: ModeBasic}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var r *CampaignResult
			for i := 0; i < b.N; i++ {
				r = campaign(b, "CLAMR", LetGoE, c.opts)
			}
			b.ReportMetric(r.Metrics.Continuability, "continuability")
			b.ReportMetric(r.Metrics.ContinuedCorrect, "c_correct")
		})
	}
}

// BenchmarkAblationRetries evaluates D4: letting LetGo elide more than one
// crash per run instead of giving up at the second.
func BenchmarkAblationRetries(b *testing.B) {
	for _, retries := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("max%d", retries), func(b *testing.B) {
			opts := &Options{Mode: ModeEnhanced, MaxRepairs: retries}
			var r *CampaignResult
			for i := 0; i < b.N; i++ {
				r = campaign(b, "LULESH", LetGoE, opts)
			}
			b.ReportMetric(r.Metrics.Continuability, "continuability")
			b.ReportMetric(r.Metrics.ContinuedSDC, "c_sdc")
		})
	}
}

// BenchmarkAblationInterval evaluates D5: Young's formula vs fixed
// checkpoint intervals in the C/R model.
func BenchmarkAblationInterval(b *testing.B) {
	app, _ := PaperAppByName("LULESH")
	base := CRParamsFor(app, 1200, 0.10, 21600)
	young := base.IntervalFor(false)
	for _, c := range []struct {
		name     string
		interval float64
		rule     checkpoint.IntervalRule
	}{
		{"young", 0, checkpoint.RuleYoung},
		{"daly", 0, checkpoint.RuleDaly},
		{"half", young / 2, checkpoint.RuleYoung},
		{"double", young * 2, checkpoint.RuleYoung},
	} {
		b.Run(c.name, func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				p := base
				p.Interval = c.interval
				p.Rule = c.rule
				r, err := checkpoint.SimulateStandard(p, stats.NewRNG(5), checkpoint.DefaultHorizon)
				if err != nil {
					b.Fatal(err)
				}
				eff = r.Efficiency()
			}
			b.ReportMetric(eff, "efficiency")
		})
	}
}

// BenchmarkSyncOverhead is the paper's synchronization-overhead
// sensitivity: Table 4 evaluates T_sync at both 10% and 50% of T_chk and
// reports that the Figure-7 trends hold across both.
func BenchmarkSyncOverhead(b *testing.B) {
	app, _ := PaperAppByName("LULESH")
	for _, sync := range []float64{0.10, 0.50} {
		b.Run(fmt.Sprintf("sync%.0f%%", 100*sync), func(b *testing.B) {
			var pts []checkpoint.Point
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = checkpoint.SweepCheckpointCost(app, []float64{12, 120, 1200}, sync, 21600, 2017, checkpoint.DefaultHorizon)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range pts {
				b.ReportMetric(p.Gain(), fmt.Sprintf("gain_t%.0f", p.X))
			}
		})
	}
}

// BenchmarkWeibullArrivals compares the Poisson fault process the paper
// assumes against heavy-tailed Weibull arrivals seen on production
// systems (El-Sayed & Schroeder).
func BenchmarkWeibullArrivals(b *testing.B) {
	app, _ := PaperAppByName("CLAMR")
	for _, shape := range []float64{1.0, 0.7} {
		b.Run(fmt.Sprintf("shape%.1f", shape), func(b *testing.B) {
			var std, lg checkpoint.Result
			for i := 0; i < b.N; i++ {
				p := CRParamsFor(app, 1200, 0.10, 21600)
				p.WeibullShape = shape
				var err error
				std, lg, err = checkpoint.Compare(p, stats.NewRNG(9), checkpoint.DefaultHorizon)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lg.Efficiency()-std.Efficiency(), "gain")
		})
	}
}

// BenchmarkFaultModels compares the paper's single-bit model against the
// Section-8 multi-bit patterns (ECC-escaping errors).
func BenchmarkFaultModels(b *testing.B) {
	app, _ := AppByName("SNAP")
	for _, model := range []FaultModel{SingleBit, DoubleBit, ByteBurst} {
		b.Run(model.String(), func(b *testing.B) {
			var r *CampaignResult
			for i := 0; i < b.N; i++ {
				c := &Campaign{App: app, Mode: LetGoE, N: benchN, Seed: 2017, Model: model}
				var err error
				r, err = c.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*r.PCrash, "crash%")
			b.ReportMetric(r.Metrics.Continuability, "continuability")
			b.ReportMetric(100*r.Counts.Frac(CSDC), "c_sdc%")
		})
	}
}

// BenchmarkClusterHarness measures the executed (not modelled) multi-rank
// C/R job with and without LetGo — the end-to-end E13 extension.
func BenchmarkClusterHarness(b *testing.B) {
	app, _ := AppByName("SNAP")
	prog, err := app.Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, useLetGo := range []bool{false, true} {
		name := "standard"
		if useLetGo {
			name = "letgo"
		}
		b.Run(name, func(b *testing.B) {
			var eff float64
			runs := 0
			for i := 0; i < b.N; i++ {
				for seed := uint64(0); seed < 4; seed++ {
					res, err := RunCluster(ClusterConfig{
						Prog:                    prog,
						Ranks:                   2,
						UseLetGo:                useLetGo,
						CheckpointInterval:      60_000,
						CheckpointCost:          3_000,
						RecoveryCost:            3_000,
						MeanInstrsBetweenFaults: 80_000,
						Seed:                    100 + seed,
						MaxCost:                 1 << 28,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Completed {
						eff += res.Efficiency()
						runs++
					}
				}
			}
			if runs > 0 {
				b.ReportMetric(eff/float64(runs), "efficiency")
			}
		})
	}
}

// BenchmarkVMExecution measures raw simulated-CPU throughput.
func BenchmarkVMExecution(b *testing.B) {
	app, _ := AppByName("SNAP")
	prog, err := app.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		m, err := vm.New(prog, vm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(1 << 30); err != nil {
			b.Fatal(err)
		}
		retired += m.Retired
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkCompiler measures MiniC compilation throughput.
func BenchmarkCompiler(b *testing.B) {
	app, _ := AppByName("PENNANT")
	for i := 0; i < b.N; i++ {
		if _, err := lang.Compile(app.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDebuggerStep measures single-step control overhead.
func BenchmarkDebuggerStep(b *testing.B) {
	prog, err := lang.Compile(`func main() { var i int; for (i = 0; i < 1000000000; i = i + 1) { } }`)
	if err != nil {
		b.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	d := debug.New(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if stop := d.StepInstr(); stop != nil {
			b.Fatal("unexpected stop")
		}
	}
}

// BenchmarkInjection measures the cost of one full injection run
// (breakpoint to site, flip, run to completion under LetGo-E).
func BenchmarkInjection(b *testing.B) {
	app, _ := AppByName("SNAP")
	prog, err := app.Compile()
	if err != nil {
		b.Fatal(err)
	}
	an := pin.Analyze(prog)
	prof, err := an.ProfileRun(vm.Config{}, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := inject.SamplePlan(prog, prof, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inject.Execute(prog, an, plan, inject.LetGoE, 4*prof.Total); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorOverheadScaling replays the paper's Section-6.2 input-
// size experiment: LULESH at three sizes, bare vs monitored, showing the
// monitor overhead does not grow with input size.
func BenchmarkMonitorOverheadScaling(b *testing.B) {
	sizes := []struct {
		name     string
		n, steps int
	}{
		{"small", 8, 10},
		{"medium", 12, 30},
		{"large", 20, 60},
	}
	for _, sz := range sizes {
		prog, err := lang.Compile(apps.LULESHSource(sz.n, sz.steps))
		if err != nil {
			b.Fatal(err)
		}
		an := pin.Analyze(prog)
		b.Run(sz.name+"/bare", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := vm.New(prog, vm.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Run(1 << 32); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sz.name+"/monitored", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := vm.New(prog, vm.Config{})
				if err != nil {
					b.Fatal(err)
				}
				r := core.Attach(m, an, core.Options{Mode: core.ModeEnhanced})
				if res := r.Run(1 << 32); res.Outcome != core.RunCompleted {
					b.Fatal("monitored run did not complete")
				}
			}
		})
	}
}
