package letgo

// CLI acceptance for the sharded campaign fabric: -shard syntax and
// mutual-exclusion errors pin the usage contract, and a real 3-shard
// run merged with -merge must render the same bytes as one process
// doing all the work.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestInjectCLIShardFlagErrors pins the -shard/-merge usage contract:
// malformed or contradictory flag combinations exit 1 (the semantic
// flag-error code) with a diagnostic naming the problem.
func TestInjectCLIShardFlagErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain")
	}
	dir := t.TempDir()
	bin := buildInject(t, dir)
	journal := filepath.Join(dir, "j.jsonl")
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"shard index zero", []string{"-shard", "0/3"}, "shard index is 1-based"},
		{"shard index past count", []string{"-shard", "4/3"}, "exceeds shard count"},
		{"shard count zero", []string{"-shard", "1/0"}, "shard count must be positive"},
		{"shard zero over zero", []string{"-shard", "0/0"}, "bad shard spec"},
		{"shard junk", []string{"-shard", "banana"}, "bad shard spec"},
		{"shard without journal", []string{"-shard", "1/3"}, "-shard requires -journal"},
		{"merge with shard", []string{"-shard", "1/3", "-journal", journal, "-merge", "x*.jsonl"}, "mutually exclusive"},
		{"merge with journal", []string{"-journal", journal, "-merge", "x*.jsonl"}, "no -journal or -resume"},
		{"merge matching nothing", []string{"-merge", filepath.Join(dir, "nope-*.jsonl")}, "matches no journals"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-apps", "CLAMR", "-n", "4"}, tc.args...)
			out, err := exec.Command(bin, args...).CombinedOutput()
			if code := exitCode(err); code != 1 {
				t.Errorf("exit code = %d, want 1\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.wantErr) {
				t.Errorf("output missing %q:\n%s", tc.wantErr, out)
			}
		})
	}
}

// TestInjectCLIShardedMerge runs one campaign as three sequential shard
// processes plus a merge process and requires the merged table to be
// byte-identical to the single-process run. A merge over an incomplete
// shard set must instead report an interrupted partial (exit 3).
func TestInjectCLIShardedMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain")
	}
	dir := t.TempDir()
	bin := buildInject(t, dir)
	args := []string{"-apps", "CLAMR,HPL", "-n", "30", "-mode", "E", "-seed", "11", "-workers", "2"}

	want, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	for i := 1; i <= 3; i++ {
		journal := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
		shardArgs := append(args, "-journal", journal, "-shard", fmt.Sprintf("%d/3", i))
		if out, err := exec.Command(bin, shardArgs...).CombinedOutput(); err != nil {
			t.Fatalf("shard %d/3: %v\n%s", i, err, out)
		}
	}

	got, err := exec.Command(bin, append(args, "-merge", filepath.Join(dir, "shard-*.jsonl"))...).Output()
	if err != nil {
		t.Fatalf("merge run: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("merged table differs from single-process run:\n--- merged\n%s--- reference\n%s", got, want)
	}

	// Merging only two of the three shard journals is an incomplete
	// campaign: the tool renders the partial and exits 3, like any other
	// interrupted run.
	partial := exec.Command(bin, append(args, "-merge", filepath.Join(dir, "shard-[12].jsonl"))...)
	out, err := partial.CombinedOutput()
	if code := exitCode(err); code != 3 {
		t.Errorf("partial merge exit code = %d, want 3\n%s", code, out)
	}
}

// TestInjectCLIMergeConflict crafts two shard journals that disagree
// about the same injection: the merge must name the collision and refuse
// to render rather than silently let the last record win.
func TestInjectCLIMergeConflict(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain")
	}
	dir := t.TempDir()
	bin := buildInject(t, dir)
	rec := `{"app":"CLAMR","mode":"letgo-e","n":4,"seed":11,"model":"bitflip","writer":"%s","index":1,"class":"%s"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "shard-1.jsonl"),
		[]byte(fmt.Sprintf(rec, "1/2", "Benign")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-2.jsonl"),
		[]byte(fmt.Sprintf(rec, "2/2", "SDC")), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin,
		"-apps", "CLAMR", "-n", "4", "-mode", "E", "-seed", "11",
		"-merge", filepath.Join(dir, "shard-*.jsonl")).CombinedOutput()
	if code := exitCode(err); code != 1 {
		t.Errorf("conflicting merge exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "shard collision") ||
		!strings.Contains(string(out), "conflicting shard record") {
		t.Errorf("output does not name the collision:\n%s", out)
	}
}
