// Cluster job: execute (rather than model) the paper's end-to-end story —
// a multi-rank job under coordinated checkpoint/restart, with register
// faults arriving as a Poisson process, compared with and without LetGo.
// Checkpoints are real machine snapshots and recoveries are real
// rollbacks, so the efficiency numbers come from executed instructions,
// not from the analytic Section-7 state machine.
package main

import (
	"flag"
	"fmt"
	"log"

	letgo "github.com/letgo-hpc/letgo"
)

func main() {
	appName := flag.String("app", "SNAP", "benchmark app each rank executes")
	ranks := flag.Int("ranks", 4, "number of lockstep ranks")
	jobs := flag.Int("jobs", 10, "jobs per arm (different fault seeds)")
	faultMean := flag.Uint64("fault-mean", 80_000, "mean instructions between per-rank register faults")
	flag.Parse()

	app, ok := letgo.AppByName(*appName)
	if !ok {
		log.Fatalf("unknown app %q", *appName)
	}
	prog, err := app.Compile()
	if err != nil {
		log.Fatal(err)
	}

	base := letgo.ClusterConfig{
		Prog:                    prog,
		Ranks:                   *ranks,
		CheckpointInterval:      60_000,
		CheckpointCost:          3_000,
		RecoveryCost:            3_000,
		MeanInstrsBetweenFaults: *faultMean,
		MaxCost:                 1 << 30,
	}

	fmt.Printf("%s x %d ranks, %d jobs per arm, mean fault gap %d instructions\n\n",
		app.Name, *ranks, *jobs, *faultMean)

	for _, useLetGo := range []bool{false, true} {
		var eff float64
		var rollbacks, faults, elided, completed int
		for seed := 0; seed < *jobs; seed++ {
			cfg := base
			cfg.Seed = uint64(1000 + seed)
			cfg.UseLetGo = useLetGo
			res, err := letgo.RunCluster(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if res.Completed {
				completed++
				eff += res.Efficiency()
			}
			rollbacks += res.Rollbacks
			faults += res.FaultsInjected
			elided += res.CrashesElided
		}
		name := "standard C/R"
		if useLetGo {
			name = "C/R + LetGo-E"
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  completed %d/%d jobs, mean efficiency %.4f\n", completed, *jobs, eff/float64(completed))
		fmt.Printf("  faults injected %d, rollbacks %d, crashes elided %d\n\n", faults, rollbacks, elided)
	}
}
