// Fault campaign: run the paper's single-bit-flip fault-injection
// methodology against one benchmark app with and without LetGo, and print
// a Table-3-style outcome distribution plus the Section-5.3 metrics.
package main

import (
	"flag"
	"fmt"
	"log"

	letgo "github.com/letgo-hpc/letgo"
)

func main() {
	appName := flag.String("app", "LULESH", "benchmark app")
	n := flag.Int("n", 400, "injections per mode")
	flag.Parse()

	app, ok := letgo.AppByName(*appName)
	if !ok {
		log.Fatalf("unknown app %q", *appName)
	}

	for _, mode := range []letgo.InjectionMode{letgo.NoLetGo, letgo.LetGoB, letgo.LetGoE} {
		c := &letgo.Campaign{App: app, Mode: mode, N: *n, Seed: 2017}
		r, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s under %v (%d injections, golden run %d instructions):\n",
			app.Name, mode, r.N, r.GoldenRetired)
		for _, cl := range []letgo.OutcomeClass{
			letgo.Benign, letgo.SDC, letgo.Detected, letgo.Crash,
			letgo.DoubleCrash, letgo.CBenign, letgo.CSDC, letgo.CDetected, letgo.Hang,
		} {
			if r.Counts.By[cl] == 0 {
				continue
			}
			ci := r.Counts.CI(cl)
			fmt.Printf("  %-12s %6.2f%% ± %.2f%%\n", cl, 100*ci.P, 100*ci.HalfCI)
		}
		fmt.Printf("  crash rate %.1f%%, %v\n", 100*r.PCrash, r.Metrics)
	}
}
