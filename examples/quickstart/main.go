// Quickstart: compile a small MiniC program, corrupt one of its pointers
// mid-run via the public fault-injection API, and watch LetGo elide the
// resulting segmentation fault so the run completes.
package main

import (
	"fmt"
	"log"

	letgo "github.com/letgo-hpc/letgo"
)

const src = `
	var table [64] float;
	var sum float;
	func main() {
		var i int;
		for (i = 0; i < 64; i = i + 1) {
			table[i] = sqrt(float(i));
		}
		// A read through a wildly out-of-range index: the address falls
		// outside every mapped segment and raises SIGSEGV.
		sum = table[3] + table[80000000];
		for (i = 0; i < 64; i = i + 1) {
			sum = sum + table[i];
		}
	}
`

func main() {
	prog, err := letgo.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// First, without LetGo: the crash-causing signal terminates the run.
	bare, _, err := letgo.Run(prog, letgo.Options{Signals: []letgo.Signal{}}, 1<<24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without LetGo: %v (signal %v)\n", bare.Outcome, bare.Signal)

	// Now under LetGo-E: the monitor intercepts SIGSEGV, the modifier
	// advances the PC past the faulting load and Heuristic I feeds the
	// destination register with 0.
	res, m, err := letgo.Run(prog, letgo.Options{Mode: letgo.ModeEnhanced}, 1<<24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with LetGo-E:  %v, crashes elided: %d\n", res.Outcome, res.Repairs)
	for _, ev := range res.Events {
		fmt.Printf("  repaired %v at pc=0x%x (%v)\n", ev.Signal, ev.PC, ev.Instr)
	}

	sum, err := m.ReadGlobalFloat("sum", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final sum = %.6f (the elided load contributed 0)\n", sum)
}
