// Custom app: author a new workload in MiniC, give it an application-level
// acceptance check, and measure how well LetGo protects it — the workflow
// a user follows to evaluate LetGo for their own application.
//
// The workload is a conjugate-gradient-flavoured iterative solver for a
// tridiagonal system; its acceptance check verifies the residual norm,
// exactly the kind of numeric-tolerance check the paper's Section 3
// describes.
package main

import (
	"fmt"
	"log"

	letgo "github.com/letgo-hpc/letgo"
)

const solverSrc = `
	var n int = 96;
	var x [96] float;
	var b [96] float;
	var r [96] float;
	var iters int;
	var residual float;

	// Jacobi-style relaxation for A x = b with A = tridiag(-1, 4, -1):
	// strongly diagonally dominant, so the iteration contracts fast.
	func main() {
		var i int;
		var k int;
		for (i = 0; i < n; i = i + 1) {
			b[i] = 1.0 + 0.5 * float(i % 7);
		}
		for (k = 0; k < 60; k = k + 1) {
			for (i = 0; i < n; i = i + 1) {
				var left float;
				var right float;
				if (i > 0) { left = x[i - 1]; } else { left = 0.0; }
				if (i < n - 1) { right = x[i + 1]; } else { right = 0.0; }
				r[i] = (b[i] + left + right) / 4.0;
			}
			for (i = 0; i < n; i = i + 1) {
				x[i] = r[i];
			}
			iters = iters + 1;
		}
		residual = 0.0;
		for (i = 0; i < n; i = i + 1) {
			var left float;
			var right float;
			if (i > 0) { left = x[i - 1]; } else { left = 0.0; }
			if (i < n - 1) { right = x[i + 1]; } else { right = 0.0; }
			var ri float;
			ri = b[i] - (4.0 * x[i] - left - right);
			residual = residual + ri * ri;
		}
		residual = sqrt(residual);
	}
`

func main() {
	app := &letgo.App{
		Name:      "TRISOLVE",
		Domain:    "Sparse iterative solver",
		Source:    solverSrc,
		Iterative: true,
		Tolerance: 1e-8,
		Accept: func(m *letgo.Machine) (bool, error) {
			iters, err := m.ReadGlobalInt("iters", 0)
			if err != nil {
				return false, err
			}
			if iters != 60 {
				return false, nil
			}
			res, err := m.ReadGlobalFloat("residual", 0)
			if err != nil {
				return false, err
			}
			return res >= 0 && res < 1e-6, nil
		},
		Output: func(m *letgo.Machine) ([]float64, error) {
			return m.ReadGlobalFloats("x", 96)
		},
	}

	// Golden sanity run through the public API.
	m, err := app.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Run(1 << 26); err != nil {
		log.Fatal(err)
	}
	ok, err := app.Accept(m)
	if err != nil || !ok {
		log.Fatalf("golden run rejected: ok=%v err=%v", ok, err)
	}
	res, _ := m.ReadGlobalFloat("residual", 0)
	fmt.Printf("golden run: %d instructions, residual %.3g\n", m.Retired, res)

	// Campaign with and without LetGo-E.
	for _, mode := range []letgo.InjectionMode{letgo.NoLetGo, letgo.LetGoE} {
		r, err := (&letgo.Campaign{App: app, Mode: mode, N: 300, Seed: 99}).Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v: crash rate %.1f%%\n", mode, 100*r.PCrash)
		if mode == letgo.LetGoE {
			fmt.Printf("  continuability      %.1f%%\n", 100*r.Metrics.Continuability)
			fmt.Printf("  continued correct   %.1f%%\n", 100*r.Metrics.ContinuedCorrect)
			fmt.Printf("  continued detected  %.1f%%\n", 100*r.Metrics.ContinuedDetected)
			fmt.Printf("  continued SDC       %.1f%%\n", 100*r.Metrics.ContinuedSDC)
		}
	}
}
