// Checkpointing study: evaluate the end-to-end impact of LetGo on a
// long-running application under coordinated checkpoint/restart — the
// paper's Section-7 pipeline. The model is seeded either with the paper's
// Table-3 probabilities or with probabilities measured by a fresh
// fault-injection campaign on the bundled benchmark.
package main

import (
	"flag"
	"fmt"
	"log"

	letgo "github.com/letgo-hpc/letgo"
)

func main() {
	appName := flag.String("app", "CLAMR", "benchmark app")
	measured := flag.Bool("measured", false, "derive probabilities from a fresh campaign instead of the paper's Table 3")
	flag.Parse()

	var probs letgo.AppProbabilities
	if *measured {
		app, ok := letgo.AppByName(*appName)
		if !ok {
			log.Fatalf("unknown app %q", *appName)
		}
		fmt.Println("running a 600-injection LetGo-E campaign to estimate probabilities...")
		r, err := (&letgo.Campaign{App: app, Mode: letgo.LetGoE, N: 600, Seed: 7}).Run()
		if err != nil {
			log.Fatal(err)
		}
		if probs, err = letgo.ProbabilitiesFromCampaign(r); err != nil {
			log.Fatal(err)
		}
	} else {
		var ok bool
		if probs, ok = letgo.PaperAppByName(*appName); !ok {
			log.Fatalf("no paper probabilities for %q", *appName)
		}
	}
	fmt.Printf("%s: P_crash=%.3f P_v=%.3f P_v'=%.3f continuability=%.3f\n\n",
		probs.Name, probs.PCrash, probs.PV, probs.PVPrime, probs.PLetGo)

	// Figure-7 sweep: checkpoint cost from burst-buffer-class (12 s) to
	// under-provisioned (1200 s) systems.
	fmt.Println("Figure 7 — efficiency vs checkpoint cost (MTBFaults = 6 h, sync 10%):")
	pts, err := letgo.Figure7(probs, 2017)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  T_chk=%5.0fs  standard %.4f  letgo %.4f  gain %+.4f\n",
			p.X, p.Standard, p.LetGo, p.Gain())
	}

	// Figure-8 sweep: scaling the machine shrinks the MTBF.
	fmt.Println("\nFigure 8 — efficiency vs system scale (T_chk = 1200 s):")
	pts, err = letgo.Figure8(probs, 1200, 2017)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  %6.0f nodes  standard %.4f  letgo %.4f  gain %+.4f\n",
			p.X, p.Standard, p.LetGo, p.Gain())
	}
}
