package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/letgo-hpc/letgo/internal/debug"
	"github.com/letgo-hpc/letgo/internal/isa"
	"github.com/letgo-hpc/letgo/internal/pin"
	"github.com/letgo-hpc/letgo/internal/vm"
)

// session is the debugger REPL state; exec processes one command line and
// reports whether the session should end.
type session struct {
	prog *isa.Program
	m    *vm.Machine
	d    *debug.Debugger
	an   *pin.Analysis
	out  io.Writer
	// lastStop remembers the most recent stop for the letgo command.
	lastStop *debug.Stop
	budget   uint64
	// checkpoints holds named COW forks of the machine (checkpoint /
	// restore commands). Each is an immutable snapshot: restoring forks
	// it again, so a checkpoint can be restored any number of times.
	checkpoints map[string]*vm.Machine
	nextCkpt    int
}

func newSession(prog *isa.Program, out io.Writer) (*session, error) {
	m, err := vm.New(prog, vm.Config{Out: out})
	if err != nil {
		return nil, err
	}
	return &session{
		prog:        prog,
		m:           m,
		d:           debug.New(m),
		an:          pin.Analyze(prog),
		out:         out,
		budget:      1 << 30,
		checkpoints: make(map[string]*vm.Machine),
	}, nil
}

func (s *session) printf(format string, args ...any) {
	fmt.Fprintf(s.out, format, args...)
}

// resolveAddr parses a code address: hex/dec literal or function symbol.
func (s *session) resolveAddr(tok string) (uint64, error) {
	if sym, ok := s.prog.Symbol(tok); ok {
		return sym.Addr, nil
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(tok, "0x"), 16, 64)
	if err == nil {
		return v, nil
	}
	v, err = strconv.ParseUint(tok, 10, 64)
	if err == nil {
		return v, nil
	}
	return 0, fmt.Errorf("cannot resolve %q", tok)
}

func (s *session) reportStop(stop *debug.Stop) {
	s.lastStop = stop
	switch stop.Reason {
	case debug.StopHalt:
		s.printf("program halted normally (%d instructions)\n", s.m.Retired)
	case debug.StopBudget:
		s.printf("instruction budget exhausted at pc=0x%x\n", s.m.PC)
	case debug.StopBreakpoint:
		in, _ := s.prog.InstrAt(s.m.PC)
		s.printf("breakpoint at 0x%x: %v (hit %d)\n", s.m.PC, in, stop.BP.Hits)
	case debug.StopSignal:
		s.printf("stopped on %v at pc=0x%x: %v\n", stop.Signal, s.m.PC, stop.Trap)
	case debug.StopTerminated:
		s.printf("program terminated by %v: %v\n", stop.Signal, stop.Trap)
	case debug.StopError:
		s.printf("execution error at pc=0x%x: %v\n", s.m.PC, stop.Err)
	}
}

// exec runs one command; returns true to quit.
func (s *session) exec(line string) bool {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "q", "quit", "exit":
		return true
	case "h", "help":
		s.printf(`commands:
  break <sym|addr> [ignore]   set a breakpoint (optional ignore count)
  delete <sym|addr>           remove a breakpoint
  info break                  list breakpoints
  handle <SIG> <stop|nostop>  set signal disposition (e.g. handle SIGSEGV stop)
  run / continue              start / resume execution
  step [n]                    execute n instructions (default 1)
  regs                        dump registers
  x <addr> [n]                examine n 64-bit words of memory
  disas [sym]                 disassemble a function (default: around pc)
  set <reg> <value>           write a register (set x3 42 / set f1 2.5)
  pc [addr]                   show or rewrite the program counter
  letgo                       repair the current signal stop by hand:
                              advance pc past the faulting instruction
  checkpoint [name]           snapshot the machine (copy-on-write fork)
  restore <name>              rewind the machine to a checkpoint
  info checkpoints            list checkpoints
  quit
`)
	case "break", "b":
		if len(args) < 1 {
			s.printf("break wants an address or symbol\n")
			return false
		}
		addr, err := s.resolveAddr(args[0])
		if err != nil {
			s.printf("%v\n", err)
			return false
		}
		var ignore uint64
		if len(args) > 1 {
			ignore, _ = strconv.ParseUint(args[1], 10, 64)
		}
		if _, err := s.d.SetBreakpoint(addr, ignore); err != nil {
			s.printf("%v\n", err)
			return false
		}
		s.printf("breakpoint at 0x%x (ignore %d)\n", addr, ignore)
	case "delete":
		if len(args) < 1 {
			s.printf("delete wants an address or symbol\n")
			return false
		}
		addr, err := s.resolveAddr(args[0])
		if err != nil {
			s.printf("%v\n", err)
			return false
		}
		s.d.ClearBreakpoint(addr)
	case "info":
		if len(args) > 0 && strings.HasPrefix(args[0], "check") {
			names := make([]string, 0, len(s.checkpoints))
			for name := range s.checkpoints {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				ck := s.checkpoints[name]
				s.printf("checkpoint %s: pc=0x%x retired=%d\n", name, ck.PC, ck.Retired)
			}
			return false
		}
		for _, bp := range s.d.Breakpoints() {
			s.printf("breakpoint 0x%x ignore=%d hits=%d\n", bp.Addr, bp.Ignore, bp.Hits)
		}
	case "checkpoint", "ck":
		name := fmt.Sprintf("ck%d", s.nextCkpt)
		if len(args) > 0 {
			name = args[0]
		} else {
			s.nextCkpt++
		}
		s.checkpoints[name] = s.m.Fork()
		s.printf("checkpoint %s: pc=0x%x retired=%d\n", name, s.m.PC, s.m.Retired)
	case "restore":
		if len(args) < 1 {
			s.printf("restore wants a checkpoint name (info checkpoints lists them)\n")
			return false
		}
		ck, ok := s.checkpoints[args[0]]
		if !ok {
			s.printf("no checkpoint %q\n", args[0])
			return false
		}
		// Fork the stored snapshot so it survives this restore untouched,
		// and repoint the debugger (breakpoints and dispositions persist).
		s.m = ck.Fork()
		s.d.M = s.m
		s.lastStop = nil
		s.printf("restored %s: pc=0x%x retired=%d\n", args[0], s.m.PC, s.m.Retired)
	case "handle":
		if len(args) != 2 {
			s.printf("usage: handle <SIGSEGV|SIGBUS|SIGABRT|SIGFPE> <stop|nostop>\n")
			return false
		}
		sig, ok := map[string]vm.Signal{
			"SIGSEGV": vm.SIGSEGV, "SIGBUS": vm.SIGBUS,
			"SIGABRT": vm.SIGABRT, "SIGFPE": vm.SIGFPE,
		}[strings.ToUpper(args[0])]
		if !ok {
			s.printf("unknown signal %q\n", args[0])
			return false
		}
		s.d.Handle(sig, debug.Disposition{Stop: args[1] == "stop", Pass: args[1] != "stop"})
		s.printf("handle %v %s\n", sig, args[1])
	case "run", "r":
		s.reportStop(s.d.Run(s.budget))
	case "continue", "c":
		s.reportStop(s.d.Continue(s.budget))
	case "step", "s":
		n := 1
		if len(args) > 0 {
			n, _ = strconv.Atoi(args[0])
		}
		for i := 0; i < n; i++ {
			if stop := s.d.StepInstr(); stop != nil {
				s.reportStop(stop)
				return false
			}
		}
		in, _ := s.prog.InstrAt(s.m.PC)
		s.printf("pc=0x%x: %v\n", s.m.PC, in)
	case "regs":
		for i := 0; i < isa.NumIntRegs; i++ {
			s.printf("%-3s %#018x  ", isa.IntRegName(isa.Reg(i)), s.m.X[i])
			if i%4 == 3 {
				s.printf("\n")
			}
		}
		for i := 0; i < isa.NumFloatRegs; i++ {
			s.printf("%-3s %-18.10g ", isa.FloatRegName(isa.Reg(i)), s.m.F[i])
			if i%4 == 3 {
				s.printf("\n")
			}
		}
	case "x":
		if len(args) < 1 {
			s.printf("x wants an address\n")
			return false
		}
		addr, err := s.resolveAddr(args[0])
		if err != nil {
			s.printf("%v\n", err)
			return false
		}
		n := 1
		if len(args) > 1 {
			n, _ = strconv.Atoi(args[1])
		}
		for i := 0; i < n; i++ {
			a := addr + uint64(8*i)
			v, err := s.m.Mem.Read8(a)
			if err != nil {
				s.printf("0x%x: %v\n", a, err)
				return false
			}
			f, _ := s.m.Mem.ReadFloat(a)
			s.printf("0x%x: %#018x  (%g)\n", a, v, f)
		}
	case "disas":
		start := s.m.PC
		count := 8
		if len(args) > 0 {
			sym, ok := s.prog.Symbol(args[0])
			if !ok || sym.Kind != isa.SymFunc {
				s.printf("no function %q\n", args[0])
				return false
			}
			start = sym.Addr
			count = int(sym.Size / isa.InstrBytes)
		}
		for i := 0; i < count; i++ {
			a := start + uint64(i*isa.InstrBytes)
			in, ok := s.prog.InstrAt(a)
			if !ok {
				break
			}
			marker := "  "
			if a == s.m.PC {
				marker = "=>"
			}
			s.printf("%s 0x%06x  %v\n", marker, a, in)
		}
	case "set":
		if len(args) != 2 {
			s.printf("usage: set <reg> <value>\n")
			return false
		}
		if r, ok := isa.IntRegByName(args[0]); ok {
			v, err := strconv.ParseInt(args[1], 0, 64)
			if err != nil {
				s.printf("bad value %q\n", args[1])
				return false
			}
			s.d.SetIntReg(r, uint64(v))
			return false
		}
		if r, ok := isa.FloatRegByName(args[0]); ok {
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil {
				s.printf("bad value %q\n", args[1])
				return false
			}
			s.d.SetFloatReg(r, v)
			return false
		}
		s.printf("unknown register %q\n", args[0])
	case "pc":
		if len(args) == 0 {
			in, _ := s.prog.InstrAt(s.m.PC)
			s.printf("pc=0x%x: %v\n", s.m.PC, in)
			return false
		}
		addr, err := s.resolveAddr(args[0])
		if err != nil {
			s.printf("%v\n", err)
			return false
		}
		s.d.SetPC(addr)
	case "letgo":
		// Manual LetGo-B: advance the PC past the faulting instruction of
		// the current signal stop.
		if s.lastStop == nil || s.lastStop.Reason != debug.StopSignal {
			s.printf("not stopped on a signal\n")
			return false
		}
		next, ok := s.an.NextPC(s.m.PC)
		if !ok {
			s.printf("no next instruction to advance to\n")
			return false
		}
		in, _ := s.prog.InstrAt(s.m.PC)
		s.d.SetPC(next)
		s.printf("elided %v (%v); pc advanced to 0x%x\n", s.lastStop.Signal, in, next)
		s.lastStop = nil
	default:
		s.printf("unknown command %q (try help)\n", cmd)
	}
	return false
}
