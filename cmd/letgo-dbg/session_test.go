package main

import (
	"strings"
	"testing"

	"github.com/letgo-hpc/letgo/internal/lang"
)

const dbgSrc = `
	var g [8] float;
	var out float;
	func main() {
		var i int;
		for (i = 0; i < 8; i = i + 1) {
			g[i] = float(i) * 1.5;
		}
		out = g[2] + g[999999999];
		out = out + 1.0;
	}
`

func newTestSession(t *testing.T) (*session, *strings.Builder) {
	t.Helper()
	prog, err := lang.Compile(dbgSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	s, err := newSession(prog, &out)
	if err != nil {
		t.Fatal(err)
	}
	return s, &out
}

func run(t *testing.T, s *session, out *strings.Builder, cmds ...string) string {
	t.Helper()
	out.Reset()
	for _, c := range cmds {
		if quit := s.exec(c); quit {
			t.Fatalf("command %q quit the session", c)
		}
	}
	return out.String()
}

func TestRunToCrashAndManualLetGo(t *testing.T) {
	s, out := newTestSession(t)
	got := run(t, s, out, "handle SIGSEGV stop", "run")
	if !strings.Contains(got, "stopped on SIGSEGV") {
		t.Fatalf("output: %s", got)
	}
	got = run(t, s, out, "letgo", "continue")
	if !strings.Contains(got, "elided SIGSEGV") || !strings.Contains(got, "halted normally") {
		t.Fatalf("output: %s", got)
	}
}

func TestDefaultDispositionTerminates(t *testing.T) {
	s, out := newTestSession(t)
	got := run(t, s, out, "run")
	if !strings.Contains(got, "terminated by SIGSEGV") {
		t.Fatalf("output: %s", got)
	}
}

func TestBreakpointAndStep(t *testing.T) {
	s, out := newTestSession(t)
	got := run(t, s, out, "break main", "run")
	if !strings.Contains(got, "breakpoint at") {
		t.Fatalf("output: %s", got)
	}
	got = run(t, s, out, "step 3", "info break")
	if !strings.Contains(got, "pc=0x") || !strings.Contains(got, "hits=1") {
		t.Fatalf("output: %s", got)
	}
}

func TestRegsAndMemoryExamine(t *testing.T) {
	s, out := newTestSession(t)
	run(t, s, out, "handle SIGSEGV stop", "run")
	got := run(t, s, out, "regs")
	if !strings.Contains(got, "sp ") || !strings.Contains(got, "f0 ") {
		t.Fatalf("regs output: %s", got)
	}
	got = run(t, s, out, "x g 3")
	if !strings.Contains(got, "(1.5)") {
		t.Fatalf("memory output: %s", got)
	}
}

func TestDisasAndSetAndPC(t *testing.T) {
	s, out := newTestSession(t)
	got := run(t, s, out, "disas main")
	if !strings.Contains(got, "push bp") {
		t.Fatalf("disas output: %s", got)
	}
	got = run(t, s, out, "set x3 42", "set f1 2.5", "regs")
	if !strings.Contains(got, "002a") || !strings.Contains(got, "2.5") {
		t.Fatalf("set/regs output: %s", got)
	}
	got = run(t, s, out, "pc")
	if !strings.Contains(got, "pc=0x") {
		t.Fatalf("pc output: %s", got)
	}
}

func TestErrorsAreReportedNotFatal(t *testing.T) {
	s, out := newTestSession(t)
	got := run(t, s, out,
		"break nowhere",
		"x 0x2 1",
		"handle SIGWHAT stop",
		"set q9 1",
		"letgo",
		"frobnicate",
	)
	for _, want := range []string{"cannot resolve", "unknown signal", "unknown register", "not stopped on a signal", "unknown command"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestQuit(t *testing.T) {
	s, _ := newTestSession(t)
	if !s.exec("quit") {
		t.Error("quit did not quit")
	}
	if s.exec("") {
		t.Error("empty line quit")
	}
}

func TestHelpListsCommands(t *testing.T) {
	s, out := newTestSession(t)
	got := run(t, s, out, "help")
	for _, want := range []string{"break", "handle", "letgo", "disas"} {
		if !strings.Contains(got, want) {
			t.Errorf("help missing %q", want)
		}
	}
}

func TestCheckpointRestoreSession(t *testing.T) {
	s, out := newTestSession(t)
	run(t, s, out, "break main", "run", "step 5")
	retiredAt := s.m.Retired
	pcAt := s.m.PC
	got := run(t, s, out, "checkpoint mid")
	if !strings.Contains(got, "checkpoint mid: pc=0x") {
		t.Fatalf("output: %s", got)
	}
	run(t, s, out, "step 10")
	if s.m.Retired == retiredAt {
		t.Fatal("stepping did not advance the machine")
	}
	divergedX := s.m.X

	got = run(t, s, out, "restore mid")
	if !strings.Contains(got, "restored mid") {
		t.Fatalf("output: %s", got)
	}
	if s.m.Retired != retiredAt || s.m.PC != pcAt {
		t.Fatalf("restore landed at (pc=0x%x, retired=%d), want (0x%x, %d)",
			s.m.PC, s.m.Retired, pcAt, retiredAt)
	}
	// Replaying the same steps reproduces the diverged state exactly: the
	// checkpoint is a true snapshot, not a shared mutable reference.
	run(t, s, out, "step 10")
	if s.m.X != divergedX {
		t.Fatal("replay after restore diverged from the original execution")
	}

	// A checkpoint survives being restored and can be restored again.
	got = run(t, s, out, "restore mid", "info checkpoints")
	if !strings.Contains(got, "restored mid") || !strings.Contains(got, "checkpoint mid:") {
		t.Fatalf("output: %s", got)
	}
	if s.m.Retired != retiredAt {
		t.Fatalf("second restore at retired=%d, want %d", s.m.Retired, retiredAt)
	}

	// Breakpoints persist across restore (the debugger is repointed, not
	// rebuilt), and unknown names are reported.
	got = run(t, s, out, "info break", "restore nope")
	if !strings.Contains(got, "breakpoint 0x") || !strings.Contains(got, `no checkpoint "nope"`) {
		t.Fatalf("output: %s", got)
	}
}

func TestCheckpointAutoNames(t *testing.T) {
	s, out := newTestSession(t)
	got := run(t, s, out, "checkpoint", "checkpoint", "info checkpoints")
	if !strings.Contains(got, "checkpoint ck0:") || !strings.Contains(got, "checkpoint ck1:") {
		t.Fatalf("output: %s", got)
	}
}
