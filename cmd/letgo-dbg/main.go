// letgo-dbg is an interactive, gdb-flavoured debugger for programs on the
// simulated machine. It exposes the same control surface LetGo is built
// on: signal dispositions, breakpoints with ignore counts, register and
// memory inspection, single-stepping, and manual PC rewriting — so a
// LetGo repair can be performed by hand, command by command.
//
// Usage:
//
//	letgo-dbg -app LULESH
//	letgo-dbg prog.mc
//
// Commands: help, break, info, run, continue, step, regs, x, disas,
// handle, set, pc, letgo, quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/letgo-hpc/letgo/internal/apps"
	"github.com/letgo-hpc/letgo/internal/asm"
	"github.com/letgo-hpc/letgo/internal/isa"
	"github.com/letgo-hpc/letgo/internal/lang"
)

func main() {
	appName := flag.String("app", "", "load a built-in benchmark app")
	flag.Parse()

	prog, err := loadProgram(*appName, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "letgo-dbg:", err)
		os.Exit(1)
	}
	s, err := newSession(prog, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "letgo-dbg:", err)
		os.Exit(1)
	}
	fmt.Println("letgo-dbg: type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("(ldb) ")
	for sc.Scan() {
		if quit := s.exec(sc.Text()); quit {
			return
		}
		fmt.Print("(ldb) ")
	}
}

func loadProgram(appName string, args []string) (*isa.Program, error) {
	if appName != "" {
		a, ok := apps.ByName(appName)
		if !ok {
			return nil, fmt.Errorf("unknown app %q", appName)
		}
		return a.Compile()
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: letgo-dbg [-app NAME | file.{mc,s,lgo}]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(args[0], ".mc"):
		return lang.Compile(string(data))
	case strings.HasSuffix(args[0], ".s"):
		return asm.Assemble(string(data))
	default:
		var p isa.Program
		if err := p.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return &p, nil
	}
}
