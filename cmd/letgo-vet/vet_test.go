package main

import (
	"testing"

	"github.com/letgo-hpc/letgo/internal/analysis"
)

// TestAppsLintClean is the acceptance gate: every built-in benchmark app
// must produce zero findings under the full check suite.
func TestAppsLintClean(t *testing.T) {
	targets, err := appTargets("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 6 {
		t.Fatalf("expected the six Table-2 apps, got %d", len(targets))
	}
	for _, tg := range targets {
		an := analysis.Analyze(tg.prog)
		for _, f := range an.Vet() {
			t.Errorf("%s: %s", tg.name, f)
		}
		// The dependency-backed checks (dead-region-write fires inside
		// Vet; uninit-output needs the acceptance globals) must also stay
		// silent on every app.
		if len(tg.outputs) == 0 {
			t.Errorf("%s: no acceptance globals declared", tg.name)
			continue
		}
		fs, err := an.VetOutputs(tg.outputs)
		if err != nil {
			t.Errorf("%s: VetOutputs: %v", tg.name, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %s", tg.name, f)
		}
	}
}

// TestAppsCheckpointSetsNonTrivial is the tentpole acceptance gate: every
// built-in app's derived minimal checkpoint set must be a non-empty strict
// subset of the whole data address space, with at least one certified
// repair-safe destination site.
func TestAppsCheckpointSetsNonTrivial(t *testing.T) {
	targets, err := appTargets("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range targets {
		ss, err := analysis.Analyze(tg.prog).CheckpointSet(tg.outputs)
		if err != nil {
			t.Errorf("%s: %v", tg.name, err)
			continue
		}
		if ss.DerivedBytes == 0 || ss.DerivedBytes >= ss.FullBytes {
			t.Errorf("%s: derived %d of %d bytes, want a non-empty strict subset",
				tg.name, ss.DerivedBytes, ss.FullBytes)
		}
		if ss.SafeSites == 0 || ss.SafeSites >= ss.DestSites {
			t.Errorf("%s: %d of %d sites repair-safe, want a non-empty strict subset",
				tg.name, ss.SafeSites, ss.DestSites)
		}
	}
}

// TestExamplesLintClean covers every MiniC program embedded in the
// examples tree (quickstart and customapp carry one each).
func TestExamplesLintClean(t *testing.T) {
	targets, err := embeddedTargets("../../examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 2 {
		t.Fatalf("expected at least 2 embedded programs, got %d", len(targets))
	}
	for _, tg := range targets {
		for _, f := range analysis.Analyze(tg.prog).Vet() {
			t.Errorf("%s: %s", tg.name, f)
		}
	}
}
