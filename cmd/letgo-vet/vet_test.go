package main

import (
	"testing"

	"github.com/letgo-hpc/letgo/internal/analysis"
)

// TestAppsLintClean is the acceptance gate: every built-in benchmark app
// must produce zero findings under the full check suite.
func TestAppsLintClean(t *testing.T) {
	targets, err := appTargets("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 6 {
		t.Fatalf("expected the six Table-2 apps, got %d", len(targets))
	}
	for _, tg := range targets {
		for _, f := range analysis.Analyze(tg.prog).Vet() {
			t.Errorf("%s: %s", tg.name, f)
		}
	}
}

// TestExamplesLintClean covers every MiniC program embedded in the
// examples tree (quickstart and customapp carry one each).
func TestExamplesLintClean(t *testing.T) {
	targets, err := embeddedTargets("../../examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 2 {
		t.Fatalf("expected at least 2 embedded programs, got %d", len(targets))
	}
	for _, tg := range targets {
		for _, f := range analysis.Analyze(tg.prog).Vet() {
			t.Errorf("%s: %s", tg.name, f)
		}
	}
}
