// letgo-vet lints assembled or compiled programs using the analyzer
// framework in internal/analysis: unreachable blocks, execution falling
// off a function's end, misaligned memory offsets, reads of never-written
// registers, unbalanced push/pop along any path, calls into non-function
// addresses, branches out of the code segment, writes to regions that are
// never read back, and acceptance outputs that are never initialized
// (-apps targets declare their acceptance globals).
//
// Usage:
//
//	letgo-vet prog.s other.mc image.lgo     # lint files
//	letgo-vet -apps all                     # lint the built-in benchmarks
//	letgo-vet -embedded examples            # lint MiniC embedded in Go files
//	letgo-vet -cfg prog.s                   # dump the CFG instead
//	letgo-vet -state -apps all              # print derived checkpoint sets
//	letgo-vet -passes                       # list the registered analyzers
//
// Exit-code contract, identical across every -format:
//
//	0  all targets clean
//	1  at least one finding reported, or an operational error
//	2  usage error (nothing to lint, unknown flag)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"github.com/letgo-hpc/letgo/internal/analysis"
	"github.com/letgo-hpc/letgo/internal/apps"
	"github.com/letgo-hpc/letgo/internal/asm"
	"github.com/letgo-hpc/letgo/internal/isa"
	"github.com/letgo-hpc/letgo/internal/lang"
)

// target is one named program to lint. outputs carries the target's
// acceptance-checked globals when known (-apps), enabling the
// dependency-backed checks (uninit-output) and -state.
type target struct {
	name    string
	prog    *isa.Program
	outputs []string
}

// finding is the JSON view of one diagnostic.
type finding struct {
	Program string `json:"program"`
	Addr    string `json:"addr"`
	Func    string `json:"func"`
	Check   string `json:"check"`
	Msg     string `json:"msg"`
}

func main() {
	appSel := flag.String("apps", "", "lint built-in benchmark apps: comma-separated names, or 'all'")
	embedded := flag.String("embedded", "", "lint MiniC programs embedded as string constants in Go files under this directory")
	format := flag.String("format", "text", "output format: text or json")
	dumpCFG := flag.Bool("cfg", false, "dump the control-flow graph instead of linting")
	dumpState := flag.Bool("state", false, "print the derived checkpoint state set of each target that declares acceptance globals, instead of linting")
	listPasses := flag.Bool("passes", false, "list the registered analysis passes and exit")
	flag.Parse()

	if *listPasses {
		for _, p := range analysis.Passes() {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	if *format != "text" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want text or json)", *format))
	}

	var targets []target
	if *appSel != "" {
		ts, err := appTargets(*appSel)
		if err != nil {
			fatal(err)
		}
		targets = append(targets, ts...)
	}
	if *embedded != "" {
		ts, err := embeddedTargets(*embedded)
		if err != nil {
			fatal(err)
		}
		targets = append(targets, ts...)
	}
	for _, path := range flag.Args() {
		tg, err := fileTarget(path)
		if err != nil {
			fatal(err)
		}
		targets = append(targets, tg)
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "letgo-vet: nothing to lint (give files, -apps or -embedded)")
		flag.Usage()
		os.Exit(2)
	}

	var all []finding
	for _, tg := range targets {
		an := analysis.Analyze(tg.prog)
		if *dumpCFG {
			fmt.Printf("# %s\n%s", tg.name, an)
			continue
		}
		if *dumpState {
			if len(tg.outputs) == 0 {
				continue
			}
			ss, err := an.CheckpointSet(tg.outputs)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("# %s\n%s", tg.name, ss.Describe())
			continue
		}
		fs := an.Vet()
		if len(tg.outputs) > 0 {
			ofs, err := an.VetOutputs(tg.outputs)
			if err != nil {
				fatal(err)
			}
			fs = append(fs, ofs...)
		}
		for _, f := range fs {
			all = append(all, finding{
				Program: tg.name,
				Addr:    fmt.Sprintf("0x%x", f.Addr),
				Func:    f.Func,
				Check:   string(f.Check),
				Msg:     f.Msg,
			})
		}
	}
	if *dumpCFG || *dumpState {
		return
	}

	switch *format {
	case "json":
		if all == nil {
			all = []finding{} // encode a clean run as [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fatal(err)
		}
	default:
		for _, f := range all {
			where := f.Func
			if where == "" {
				where = "<anon>"
			}
			fmt.Printf("%s: %s (%s): %s: %s\n", f.Program, f.Addr, where, f.Check, f.Msg)
		}
		if len(all) == 0 {
			fmt.Printf("letgo-vet: %d program(s) clean\n", len(targets))
		}
	}
	// The exit code depends only on the findings, never on the format:
	// -format json exits 1 on findings exactly like the text renderer.
	if len(all) > 0 {
		os.Exit(1)
	}
}

// appTargets resolves -apps into compiled benchmark programs.
func appTargets(sel string) ([]target, error) {
	var list []*apps.App
	if strings.EqualFold(sel, "all") {
		list = apps.All()
	} else {
		for _, name := range strings.Split(sel, ",") {
			a, ok := apps.ByName(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown app %q", name)
			}
			list = append(list, a)
		}
	}
	var out []target
	for _, a := range list {
		p, err := a.Compile()
		if err != nil {
			return nil, err
		}
		out = append(out, target{name: a.Name, prog: p, outputs: a.AcceptanceGlobals()})
	}
	return out, nil
}

// fileTarget loads one program file by extension: .s assembles, .mc
// compiles, .lgo loads an object image.
func fileTarget(path string) (target, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return target{}, err
	}
	var prog *isa.Program
	switch {
	case strings.HasSuffix(path, ".s"):
		prog, err = asm.Assemble(string(data))
	case strings.HasSuffix(path, ".mc"):
		prog, err = lang.Compile(string(data))
	case strings.HasSuffix(path, ".lgo"):
		prog = &isa.Program{}
		err = prog.UnmarshalBinary(data)
	default:
		err = fmt.Errorf("unknown file type %q (want .s, .mc or .lgo)", path)
	}
	if err != nil {
		return target{}, fmt.Errorf("%s: %w", path, err)
	}
	return target{name: path, prog: prog}, nil
}

// embeddedTargets walks a directory tree for Go files and compiles every
// string constant that looks like a MiniC program (contains "func main").
// This lints the programs the examples embed without duplicating their
// sources.
func embeddedTargets(dir string) ([]target, error) {
	var out []target
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		srcs, ferr := embeddedMiniC(path)
		if ferr != nil {
			return ferr
		}
		for name, src := range srcs {
			prog, cerr := lang.Compile(src)
			if cerr != nil {
				return fmt.Errorf("%s: embedded program %s: %w", path, name, cerr)
			}
			out = append(out, target{name: path + "#" + name, prog: prog})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no embedded MiniC programs found under %s", dir)
	}
	return out, nil
}

// embeddedMiniC extracts candidate MiniC sources from one Go file: string
// literals containing a MiniC main function.
func embeddedMiniC(path string) (map[string]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	n := 0
	ast.Inspect(f, func(node ast.Node) bool {
		lit, ok := node.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, "`") {
			return true
		}
		src := strings.Trim(lit.Value, "`")
		if !strings.Contains(src, "func main") {
			return true
		}
		n++
		out[fmt.Sprintf("prog%d", n)] = src
		return true
	})
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "letgo-vet:", err)
	os.Exit(1)
}
