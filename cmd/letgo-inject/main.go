// letgo-inject runs fault-injection campaigns against the benchmark apps
// and prints Table-3-style outcome distributions and Figure-5-style metric
// comparisons.
//
// Usage:
//
//	letgo-inject -apps iterative -n 2000 -mode E        # Table 3
//	letgo-inject -apps LULESH,SNAP -n 2000 -compare     # Figure 5 (B vs E)
//	letgo-inject -apps hpl -n 2000 -mode E              # Section 8
//	letgo-inject -apps all -format json                 # machine-readable
//	letgo-inject -journal c.jsonl -n 2000 ...           # killable
//	letgo-inject -journal c.jsonl -resume -n 2000 ...   # ...and resumable
//
// One campaign can be split across independent processes (docs/FABRIC.md):
// each process plans the same campaign, executes only its i/n shard into
// its own journal, and a final merge renders the table byte-identically
// to a single-process run:
//
//	letgo-inject -shard 1/3 -journal s1.jsonl -n 2000 ...  # per shard
//	letgo-inject -merge 's*.jsonl' -n 2000 ...             # final table
//
// Or coordinated dynamically over HTTP (no shared filesystem): the
// coordinator leases work units to remote workers, re-dispatches units
// whose leases expire (crashed or stalled workers), and renders the
// final table from the records they ship back:
//
//	letgo-inject -coordinate :0 -journal c.jsonl -n 2000 ...   # coordinator
//	letgo-inject -worker http://host:port                      # each worker
//
// Exit codes: 0 success, 1 error, 2 bad flags, 3 interrupted (partial
// results were printed and the journal, if any, supports -resume; a
// merge over incomplete shard journals also exits 3).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"github.com/letgo-hpc/letgo/internal/apps"
	"github.com/letgo-hpc/letgo/internal/fabric"
	"github.com/letgo-hpc/letgo/internal/inject"
	"github.com/letgo-hpc/letgo/internal/obs"
	"github.com/letgo-hpc/letgo/internal/obs/serve"
	"github.com/letgo-hpc/letgo/internal/outcome"
	"github.com/letgo-hpc/letgo/internal/report"
	"github.com/letgo-hpc/letgo/internal/resilience"
)

// Exit codes.
const (
	exitOK          = 0
	exitErr         = 1
	exitFlags       = 2 // produced by flag.ExitOnError
	exitInterrupted = 3
)

// telem holds the optional observability sinks; all-off by default so
// the tables printed on stdout are byte-identical without the flags.
var telem *obs.Sinks

// engineSel is the -engine flag value, applied to every campaign. Both
// engines produce identical tables; fork is simply faster.
var engineSel inject.Engine

// runCtx is cancelled by SIGINT/SIGTERM (and the -deadline timeout);
// campaigns drain their in-flight injections and return partial results.
var runCtx context.Context

// journal is the -journal resume journal shared by every campaign of the
// invocation (keys separate apps and modes); nil without the flag.
var journal *resilience.Journal

// watchdogSel is the -watchdog per-injection wall-clock bound.
var watchdogSel time.Duration

// shardSel is the -shard work-unit spec applied to every campaign; the
// zero value runs whole campaigns.
var shardSel inject.ShardSpec

// merged holds the -merge mode's combined shard journals (nil outside
// merge mode), with the file count and writer identities kept for the
// JSON provenance annotation.
var merged *resilience.Journal
var mergedJournals int
var mergedWriters []string

// coordinator is the -coordinate fabric coordinator (nil outside
// coordinate mode), with its HTTP server kept for shutdown.
var coordinator *fabric.Coordinator
var coordSrv *http.Server

// plane is the -serve observability server; nil without the flag. Closed
// explicitly on every exit path (main leaves through os.Exit, so defers
// would not run) to end SSE streams cleanly.
var plane *serve.Server

// progressTally accumulates completion across the campaigns that ran, for
// the interrupted banner.
var progressTally struct {
	completed, total int
	interrupted      bool
}

func main() {
	appSel := flag.String("apps", "iterative", "comma-separated app names, 'iterative', 'all', 'hpl' or 'extensions'")
	n := flag.Int("n", 1000, "injections per app per mode")
	mode := flag.String("mode", "E", "LetGo mode for the campaign: off, B, E")
	compare := flag.Bool("compare", false, "run both LetGo-B and LetGo-E and print the four metrics (Figure 5)")
	seed := flag.Uint64("seed", 2017, "campaign seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	engineFlag := flag.String("engine", "fork", "execution engine: fork (COW fork-replay) or rerun (re-execute from PC 0); results are identical")
	formatFlag := flag.String("format", "text", "output format: text, markdown, csv or json")
	metricsOut := flag.String("metrics-out", "", "write a metrics dump on exit (Prometheus text; JSON when the path ends in .json)")
	eventsJSON := flag.String("events-json", "", "stream structured JSONL events to this file")
	progress := flag.Bool("progress", false, "render live campaign progress on stderr")
	serveAddr := flag.String("serve", "", "serve the live observability plane on this address (/metrics, /events, /status, /healthz, /debug/pprof)")
	journalPath := flag.String("journal", "", "append completed injections to this JSONL journal (crash-safe; enables -resume)")
	resume := flag.Bool("resume", false, "restore completed injections from the -journal file instead of re-executing them")
	shardFlag := flag.String("shard", "", "execute only work unit i/n of each campaign (1-based; requires -journal) for a later -merge")
	mergeFlag := flag.String("merge", "", "merge the shard journals matching this glob and render the final tables without executing injections")
	watchdog := flag.Duration("watchdog", 0, "per-injection wall-clock bound; expired injections are quarantined as C-Hang (0 = off)")
	deadline := flag.Duration("deadline", 0, "whole-invocation wall-clock bound; on expiry campaigns drain and partial results print (0 = off)")
	coordinateFlag := flag.String("coordinate", "", "serve the fabric work queue on this address and coordinate remote -worker processes (requires -journal)")
	workerFlag := flag.String("worker", "", "run as a fabric worker against this coordinator URL; campaigns come from the coordinator")
	workerName := flag.String("worker-name", "", "fabric worker identity stamped on shipped records (default host-pid)")
	leaseTTL := flag.Duration("lease-ttl", 0, "fabric lease TTL before an unrenewed work unit is re-dispatched (0 = 10s)")
	unitSize := flag.Int("unit-size", 0, "fabric work-unit size in injections (0 = derived from n)")
	flag.Parse()

	format, err := report.ParseFormat(*formatFlag)
	if err != nil {
		fatal(err)
	}

	if engineSel, err = inject.ParseEngine(*engineFlag); err != nil {
		fatal(err)
	}

	sel, err := selectApps(*appSel)
	if err != nil {
		fatal(err)
	}

	if telem, err = obs.Open(obs.Options{
		MetricsOut: *metricsOut, EventsJSON: *eventsJSON,
		Progress: *progress, Serve: *serveAddr != "",
	}); err != nil {
		fatal(err)
	}
	if *serveAddr != "" {
		if plane, err = serve.ForSinks(*serveAddr, telem); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "letgo-inject: observability plane on http://%s (metrics, events, status, healthz, debug/pprof)\n", plane.Addr())
	}

	switch {
	case *coordinateFlag != "" && *workerFlag != "":
		fatal(fmt.Errorf("-coordinate and -worker are mutually exclusive (one process is one side of the fabric)"))
	case (*coordinateFlag != "" || *workerFlag != "") && (*shardFlag != "" || *mergeFlag != ""):
		fatal(fmt.Errorf("-coordinate/-worker replace static -shard/-merge partitioning; the flags are mutually exclusive"))
	case *coordinateFlag != "" && *journalPath == "":
		fatal(fmt.Errorf("-coordinate requires -journal (the journal is the coordinator's crash-safe state)"))
	case *workerFlag != "" && (*journalPath != "" || *resume):
		fatal(fmt.Errorf("-worker ships records to the coordinator; it takes no -journal or -resume"))
	}

	if *shardFlag != "" {
		if shardSel, err = inject.ParseShardSpec(*shardFlag); err != nil {
			fatal(err)
		}
		if *journalPath == "" {
			fatal(fmt.Errorf("-shard requires -journal (the shard journal is what -merge consumes)"))
		}
	}
	if *mergeFlag != "" {
		switch {
		case *shardFlag != "":
			fatal(fmt.Errorf("-merge and -shard are mutually exclusive"))
		case *journalPath != "" || *resume:
			fatal(fmt.Errorf("-merge reads shard journals; it takes no -journal or -resume"))
		}
		var collisions []resilience.Collision
		if merged, collisions, err = resilience.MergeGlob(*mergeFlag); err != nil {
			fatal(err)
		}
		paths, _ := filepath.Glob(*mergeFlag)
		mergedJournals = len(paths)
		mergedWriters = merged.Writers()
		conflicting := reportMerge(mergedJournals, collisions)
		for _, col := range collisions {
			fmt.Fprintf(os.Stderr, "letgo-inject: shard collision: %s\n", col)
		}
		if conflicting > 0 {
			fatal(fmt.Errorf("%d conflicting shard record(s); refusing to merge (shards disagree about the same injection)", conflicting))
		}
	}
	if *resume && *journalPath == "" {
		fatal(fmt.Errorf("-resume requires -journal"))
	}
	if *journalPath != "" {
		if *resume {
			journal, err = resilience.Open(*journalPath)
		} else {
			journal, err = resilience.Create(*journalPath)
		}
		if err != nil {
			fatal(err)
		}
	}
	watchdogSel = *watchdog

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	runCtx = ctx

	if *workerFlag != "" {
		runWorker(*workerFlag, *workerName, *workers)
	}
	if *coordinateFlag != "" {
		coordinator = fabric.NewCoordinator(journal, fabric.Options{
			LeaseTTL: *leaseTTL, UnitSize: *unitSize, Hub: telem.Hub,
		})
		ln, err := net.Listen("tcp", *coordinateFlag)
		if err != nil {
			fatal(err)
		}
		coordSrv = &http.Server{Handler: coordinator.Handler()}
		go coordSrv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
		fmt.Fprintf(os.Stderr, "letgo-inject: fabric coordinator on http://%s\n", ln.Addr())
		// The serve plane mirrors the coordinator's snapshot so one
		// scrape target covers campaign and fabric state.
		plane.Handle("/fabric/status", coordinator.StatusHandler())
	}

	switch {
	case *compare:
		runCompare(sel, *n, *seed, *workers)
	case format != report.Text:
		rows := make([]report.CampaignRow, 0, len(sel))
		for _, a := range sel {
			if runCtx.Err() != nil {
				break
			}
			r := mustRun(&inject.Campaign{App: a, Mode: modeFromFlag(*mode), N: *n, Seed: *seed, Workers: *workers})
			if r == nil {
				break
			}
			rows = append(rows, report.Row(r))
		}
		if merged != nil {
			report.AnnotateMerge(rows, mergedJournals, mergedWriters)
		}
		if err := report.Campaigns(os.Stdout, format, rows); err != nil {
			fatal(err)
		}
	default:
		runTable(sel, modeFromFlag(*mode), *n, *seed, *workers)
	}
	shutdownFabric()
	if err := telem.Close(); err != nil {
		fatal(err)
	}
	plane.Close()
	if progressTally.interrupted || runCtx.Err() != nil {
		fmt.Fprintf(os.Stderr, "letgo-inject: interrupted: %d/%d injections completed",
			progressTally.completed, progressTally.total)
		if journal != nil {
			fmt.Fprintf(os.Stderr, " (resume with -resume -journal %s)", journal.Path())
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(exitInterrupted)
	}
	os.Exit(exitOK)
}

func modeFromFlag(mode string) inject.Mode {
	switch strings.ToUpper(mode) {
	case "OFF":
		return inject.NoLetGo
	case "B":
		return inject.LetGoB
	case "E":
		return inject.LetGoE
	}
	fatal(fmt.Errorf("unknown mode %q", mode))
	return inject.LetGoE
}

func selectApps(sel string) ([]*apps.App, error) {
	switch strings.ToLower(sel) {
	case "iterative":
		return apps.Iterative(), nil
	case "all":
		return apps.All(), nil
	case "hpl":
		a, _ := apps.ByName("HPL")
		return []*apps.App{a}, nil
	case "extensions", "amg":
		return apps.Extensions(), nil
	}
	var out []*apps.App
	for _, name := range strings.Split(sel, ",") {
		a, ok := apps.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown app %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runTable prints the Table-3 layout: outcome fractions normalized by the
// total number of injections.
func runTable(sel []*apps.App, mode inject.Mode, n int, seed uint64, workers int) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Benchmark\tDetected\tBenign\tSDC\tDoubleCrash\tC-Detected\tC-Benign\tC-SDC\tHang\tCrashRate\tContinuability\tMedianCrashLatency\tDeadDest\tMaskedDead\tMaskedLive\n")
	var agg outcome.Counts
	var aggLive, aggDead outcome.Counts
	for _, a := range sel {
		if runCtx.Err() != nil {
			break
		}
		r := mustRun(&inject.Campaign{App: a, Mode: mode, N: n, Seed: seed, Workers: workers})
		if r == nil {
			break
		}
		agg.Merge(r.Counts)
		aggLive.Merge(r.LiveDest)
		aggDead.Merge(r.DeadDest)
		row(w, a.Name, &r.Counts, r.Metrics, fmt.Sprintf("%d", r.MedianCrashLatency()), &r.LiveDest, &r.DeadDest)
	}
	if len(sel) > 1 {
		row(w, "AVERAGE", &agg, outcome.ComputeMetrics(&agg), "-", &aggLive, &aggDead)
	}
	w.Flush()
}

func row(w *tabwriter.Writer, name string, c *outcome.Counts, m outcome.Metrics, latency string, live, dead *outcome.Counts) {
	pct := func(cl outcome.Class) string { return fmt.Sprintf("%.2f%%", 100*c.Frac(cl)) }
	crash := 0.0
	deadFrac := 0.0
	if c.N > 0 {
		crash = float64(c.CrashTotal()) / float64(c.N)
		deadFrac = float64(dead.N) / float64(c.N)
	}
	fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%.2f%%\t%.2f%%\t%s\t%.2f%%\t%.2f%%\t%.2f%%\n",
		name, pct(outcome.Detected), pct(outcome.Benign), pct(outcome.SDC),
		pct(outcome.DoubleCrash), pct(outcome.CDetected), pct(outcome.CBenign),
		pct(outcome.CSDC), pct(outcome.Hang), 100*crash, 100*m.Continuability, latency,
		100*deadFrac, 100*inject.MaskedFrac(dead), 100*inject.MaskedFrac(live))
}

// runCompare prints the Figure-5 layout: the four Section-5.3 metrics for
// LetGo-B and LetGo-E side by side.
func runCompare(sel []*apps.App, n int, seed uint64, workers int) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Benchmark\tMode\tContinuability\tContinued_detected\tContinued_correct\tContinued_SDC\n")
	for _, a := range sel {
		for _, mode := range []inject.Mode{inject.LetGoB, inject.LetGoE} {
			if runCtx.Err() != nil {
				break
			}
			r := mustRun(&inject.Campaign{App: a, Mode: mode, N: n, Seed: seed, Workers: workers})
			if r == nil {
				break
			}
			m := r.Metrics
			fmt.Fprintf(w, "%s\t%v\t%.3f\t%.3f\t%.3f\t%.3f\n",
				a.Name, mode, m.Continuability, m.ContinuedDetected, m.ContinuedCorrect, m.ContinuedSDC)
		}
	}
	w.Flush()
}

func mustRun(c *inject.Campaign) *inject.Result {
	c.Engine = engineSel
	c.Journal = journal
	c.Watchdog = watchdogSel
	c.ShardSpec = shardSel
	if telem.Enabled() {
		c.Obs = telem.Hub
		c.Observer = inject.NewObsObserver(c.App.Name, c.Mode, c.N, telem.Hub, telem.Progress, telem.Status)
	}
	if coordinator != nil {
		return mustCoordinate(c)
	}
	var r *inject.Result
	var err error
	if merged != nil {
		r, err = c.MergeContext(runCtx, merged)
	} else {
		r, err = c.RunContext(runCtx)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The signal (or -deadline) landed before this campaign's
		// injection phase: nothing to render, count the whole campaign
		// as outstanding.
		progressTally.total += c.N
		progressTally.interrupted = true
		return nil
	}
	if err != nil {
		fatal(err)
	}
	progressTally.completed += r.Completed
	progressTally.total += r.Planned
	if r.Interrupted {
		progressTally.interrupted = true
	}
	return r
}

// mustCoordinate runs one campaign in coordinate mode: plan locally,
// publish the plan to the fabric work queue, and — once every unit's
// records have shipped back (or the invocation was interrupted) — render
// the result from the journal through the same Merge stage a -merge
// invocation uses, so the table is byte-identical to a single-process
// run's.
func mustCoordinate(c *inject.Campaign) *inject.Result {
	p, err := c.PlanContext(runCtx)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		progressTally.total += c.N
		progressTally.interrupted = true
		return nil
	}
	if err != nil {
		fatal(err)
	}
	cerr := coordinator.Coordinate(runCtx, p.Manifest())
	if cerr != nil && !errors.Is(cerr, context.Canceled) && !errors.Is(cerr, context.DeadlineExceeded) {
		fatal(cerr)
	}
	// Render with a background context: after SIGINT the partial table
	// from whatever shipped is exactly what exit code 3 promises.
	r, err := c.MergeContext(context.Background(), journal)
	if err != nil {
		fatal(err)
	}
	progressTally.completed += r.Completed
	progressTally.total += r.Planned
	if r.Interrupted || cerr != nil {
		progressTally.interrupted = true
	}
	return r
}

// runWorker is the whole -worker mode: serve the coordinator's queue
// until it says done, then exit with the usual code contract. Campaign
// configuration comes from the coordinator; only execution knobs
// (engine, workers, watchdog) are local.
func runWorker(base, name string, workers int) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &fabric.Worker{
		Base: base, Name: name, Engine: engineSel, Workers: workers,
		Watchdog: watchdogSel, Hub: telem.Hub,
	}
	fmt.Fprintf(os.Stderr, "letgo-inject: fabric worker %q serving %s\n", name, base)
	err := w.Run(runCtx)
	telem.Close() //nolint:errcheck // exiting either way
	plane.Close()
	switch {
	case err == nil:
		os.Exit(exitOK)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "letgo-inject: worker interrupted")
		os.Exit(exitInterrupted)
	default:
		fmt.Fprintln(os.Stderr, "letgo-inject:", err)
		os.Exit(exitErr)
	}
}

// reportMerge mirrors a merge's shape into the obs plane — the journal
// count and the identical/conflicting collision split, as letgo_merge_*
// counters and /status fields — and returns the conflicting count for
// the abort decision.
func reportMerge(journals int, collisions []resilience.Collision) int {
	identical, conflicting := 0, 0
	for _, col := range collisions {
		if col.Identical {
			identical++
		} else {
			conflicting++
		}
	}
	if telem.Hub != nil {
		if reg := telem.Hub.Reg; reg != nil {
			reg.Help("letgo_merge_journals_total", "Shard journal files combined by -merge.")
			reg.Counter("letgo_merge_journals_total")
			reg.Help("letgo_merge_collisions_total", "Writer-identity collisions across merged shard journals, by kind.")
			reg.Counter("letgo_merge_collisions_total", "kind", "identical")
			reg.Counter("letgo_merge_collisions_total", "kind", "conflicting")
		}
		telem.Hub.Counter("letgo_merge_journals_total").Add(uint64(journals))
		telem.Hub.Counter("letgo_merge_collisions_total", "kind", "identical").Add(uint64(identical))
		telem.Hub.Counter("letgo_merge_collisions_total", "kind", "conflicting").Add(uint64(conflicting))
	}
	telem.Status.SetMerge(journals, identical, conflicting)
	return conflicting
}

// shutdownFabric ends a coordinate-mode invocation cleanly: tell the
// fleet the invocation is done, give recently seen workers a moment to
// hear it, then stop the protocol server.
func shutdownFabric() {
	if coordinator == nil {
		return
	}
	coordinator.Finish()
	coordinator.AwaitDrain(3 * time.Second)
	if coordSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		coordSrv.Shutdown(ctx) //nolint:errcheck // exiting either way
	}
}

func fatal(err error) {
	shutdownFabric()
	plane.Close()
	fmt.Fprintln(os.Stderr, "letgo-inject:", err)
	os.Exit(exitErr)
}
