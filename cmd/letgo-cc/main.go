// letgo-cc compiles MiniC source files into program objects for the
// simulated machine, or emits the generated assembly with -S.
//
// Usage:
//
//	letgo-cc [-S] [-o out] prog.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/letgo-hpc/letgo/internal/lang"
)

func main() {
	emitAsm := flag.Bool("S", false, "emit assembly text instead of an object file")
	out := flag.String("o", "", "output path (default: input with .lgo/.s extension)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: letgo-cc [-S] [-o out] prog.mc")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}

	base := strings.TrimSuffix(in, ".mc")
	if *emitAsm {
		text, err := lang.CompileToAsm(string(src))
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" {
			path = base + ".s"
		}
		if err := writeOut(path, []byte(text)); err != nil {
			fatal(err)
		}
		return
	}

	prog, err := lang.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	obj, err := prog.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = base + ".lgo"
	}
	if err := writeOut(path, obj); err != nil {
		fatal(err)
	}
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "letgo-cc:", err)
	os.Exit(1)
}
