// letgo-asm assembles assembly text into program objects, or disassembles
// an object with -d.
//
// Usage:
//
//	letgo-asm [-o out.lgo] prog.s
//	letgo-asm -d prog.lgo
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/letgo-hpc/letgo/internal/asm"
	"github.com/letgo-hpc/letgo/internal/isa"
)

func main() {
	disasm := flag.Bool("d", false, "disassemble an object file")
	out := flag.String("o", "", "output path (default: input with .lgo extension, or stdout for -d)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: letgo-asm [-d] [-o out] file")
		os.Exit(2)
	}
	in := flag.Arg(0)
	data, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}

	if *disasm {
		var prog isa.Program
		if err := prog.UnmarshalBinary(data); err != nil {
			fatal(err)
		}
		text := asm.Disassemble(&prog)
		if *out == "" || *out == "-" {
			fmt.Print(text)
			return
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		return
	}

	prog, err := asm.Assemble(string(data))
	if err != nil {
		fatal(err)
	}
	obj, err := prog.MarshalBinary()
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(in, ".s") + ".lgo"
	}
	if err := os.WriteFile(path, obj, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "letgo-asm:", err)
	os.Exit(1)
}
