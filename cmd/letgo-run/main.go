// letgo-run executes a program on the simulated machine, optionally under
// LetGo supervision, and reports the outcome.
//
// The input is a benchmark name (-app), a MiniC source file (.mc), an
// assembly file (.s) or a compiled object (.lgo).
//
// Usage:
//
//	letgo-run -app LULESH -mode E
//	letgo-run -mode B prog.mc
//	letgo-run -mode off prog.lgo
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/letgo-hpc/letgo/internal/apps"
	"github.com/letgo-hpc/letgo/internal/asm"
	"github.com/letgo-hpc/letgo/internal/core"
	"github.com/letgo-hpc/letgo/internal/isa"
	"github.com/letgo-hpc/letgo/internal/lang"
	"github.com/letgo-hpc/letgo/internal/obs"
	"github.com/letgo-hpc/letgo/internal/pin"
	"github.com/letgo-hpc/letgo/internal/trace"
	"github.com/letgo-hpc/letgo/internal/vm"
)

// telem holds the optional observability sinks; all-off by default so
// the stdout report is byte-identical without the flags.
var telem *obs.Sinks

// progressChunk is the instruction granularity at which a -progress run
// surfaces its retired count between vm resumptions.
const progressChunk = 1 << 22

func main() {
	appName := flag.String("app", "", "run a built-in benchmark app (LULESH, CLAMR, HPL, COMD, SNAP, PENNANT)")
	mode := flag.String("mode", "E", "LetGo mode: off, B (basic), E (enhanced)")
	budget := flag.Uint64("budget", 1<<28, "instruction budget before declaring a hang")
	events := flag.Bool("events", false, "print the LetGo repair event log")
	traceN := flag.Int("trace", 0, "keep an N-instruction history and print a crash report on faults (mode off only)")
	metricsOut := flag.String("metrics-out", "", "write a metrics dump on exit (Prometheus text; JSON when the path ends in .json)")
	eventsJSON := flag.String("events-json", "", "stream structured JSONL events to this file")
	progress := flag.Bool("progress", false, "render live retired-instruction progress on stderr")
	flag.Parse()

	prog, app, err := loadProgram(*appName, flag.Args())
	if err != nil {
		fatal(err)
	}
	if telem, err = obs.OpenSinks(*metricsOut, *eventsJSON, *progress); err != nil {
		fatal(err)
	}

	m, err := vm.New(prog, vm.Config{Out: os.Stdout})
	if err != nil {
		fatal(err)
	}
	if telem.Enabled() && telem.Hub != nil {
		telem.Hub.Emit(obs.PhaseEvent{App: progName(app, flag.Args()), Phase: "run"})
		m.OnTrap = func(t *vm.Trap) {
			telem.Hub.Counter("letgo_vm_traps_total", "signal", t.Signal.String()).Inc()
		}
	}
	telem.Progress.Start("run "+progName(app, flag.Args()), 0)

	if strings.EqualFold(*mode, "off") {
		var ring *trace.Ring
		var err error
		if *traceN > 0 {
			ring = trace.NewRing(*traceN)
			err = trace.RunTraced(m, ring, *budget)
			telem.Progress.Update(int(m.Retired))
		} else {
			err = runChunkedVM(m, *budget)
		}
		telem.Progress.Finish()
		switch {
		case err == nil:
			fmt.Println("outcome: completed")
		case err == vm.ErrBudget:
			fmt.Println("outcome: hang (budget exhausted)")
		default:
			fmt.Printf("outcome: crashed (%v)\n", err)
			if trap, ok := err.(*vm.Trap); ok && ring != nil {
				trace.CrashReport(os.Stdout, m, trap, ring)
			}
		}
		report(app, m)
		finishTelem(m)
		return
	}

	opts := core.Options{Mode: core.ModeEnhanced}
	if strings.EqualFold(*mode, "B") {
		opts.Mode = core.ModeBasic
	}
	if telem.Enabled() {
		opts.Obs = telem.Hub
	}
	runner := core.Attach(m, pin.Analyze(prog), opts)
	res := runChunkedRunner(runner, m, *budget)
	telem.Progress.Finish()
	fmt.Printf("outcome: %v  signal: %v  crashes elided: %d  retired: %d\n",
		res.Outcome, res.Signal, res.Repairs, res.Retired)
	if *events {
		fmt.Print(trace.FormatEvents(res.Events))
	}
	report(app, m)
	finishTelem(m)
}

// runChunkedVM drives an unsupervised machine to completion. With live
// progress enabled it resumes in fixed instruction chunks so the retired
// count surfaces between resumptions; the chunking is invisible to the
// program (the budget check in vm.Run is against the absolute retired
// count).
func runChunkedVM(m *vm.Machine, budget uint64) error {
	if telem.Progress == nil {
		return m.Run(budget)
	}
	for {
		target := m.Retired + progressChunk
		if target > budget {
			target = budget
		}
		err := m.Run(target)
		telem.Progress.Update(int(m.Retired))
		if err != vm.ErrBudget || target >= budget {
			return err
		}
	}
}

// runChunkedRunner is runChunkedVM for a LetGo-supervised run. The
// runner keeps its repair state across resumptions, so the final Result
// is identical to a single Run call.
func runChunkedRunner(r *core.Runner, m *vm.Machine, budget uint64) core.Result {
	if telem.Progress == nil {
		return r.Run(budget)
	}
	for {
		target := m.Retired + progressChunk
		if target > budget {
			target = budget
		}
		res := r.Run(target)
		telem.Progress.Update(int(m.Retired))
		if res.Outcome != core.RunHang || target >= budget {
			return res
		}
	}
}

// finishTelem records final machine-level metrics and flushes the sinks.
func finishTelem(m *vm.Machine) {
	if telem.Enabled() && telem.Hub != nil {
		telem.Hub.Reg.Help("letgo_vm_retired_instructions_total", "Instructions retired by the machine.")
		telem.Hub.Counter("letgo_vm_retired_instructions_total").Add(m.Retired)
	}
	if err := telem.Close(); err != nil {
		fatal(err)
	}
}

// progName labels the run for events and progress.
func progName(app *apps.App, args []string) string {
	if app != nil {
		return app.Name
	}
	if len(args) > 0 {
		return args[0]
	}
	return "program"
}

// loadProgram resolves the input program from -app or a file argument.
func loadProgram(appName string, args []string) (*isa.Program, *apps.App, error) {
	if appName != "" {
		a, ok := apps.ByName(appName)
		if !ok {
			return nil, nil, fmt.Errorf("unknown app %q", appName)
		}
		p, err := a.Compile()
		return p, a, err
	}
	if len(args) != 1 {
		return nil, nil, fmt.Errorf("usage: letgo-run [-app NAME | file.{mc,s,lgo}]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return nil, nil, err
	}
	switch {
	case strings.HasSuffix(args[0], ".mc"):
		p, err := lang.Compile(string(data))
		return p, nil, err
	case strings.HasSuffix(args[0], ".s"):
		p, err := asm.Assemble(string(data))
		return p, nil, err
	default:
		var p isa.Program
		if err := p.UnmarshalBinary(data); err != nil {
			return nil, nil, err
		}
		return &p, nil, nil
	}
}

// report runs the app's acceptance check when a benchmark was requested
// and the machine finished.
func report(app *apps.App, m *vm.Machine) {
	if app == nil || !m.Halted {
		return
	}
	ok, err := app.Accept(m)
	if err != nil {
		fmt.Printf("acceptance check: error: %v\n", err)
		return
	}
	fmt.Printf("acceptance check (%s): passed=%v\n", app.Name, ok)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "letgo-run:", err)
	os.Exit(1)
}
