// letgo-run executes a program on the simulated machine, optionally under
// LetGo supervision, and reports the outcome.
//
// The input is a benchmark name (-app), a MiniC source file (.mc), an
// assembly file (.s) or a compiled object (.lgo).
//
// Usage:
//
//	letgo-run -app LULESH -mode E
//	letgo-run -mode B prog.mc
//	letgo-run -mode off prog.lgo
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/letgo-hpc/letgo/internal/apps"
	"github.com/letgo-hpc/letgo/internal/asm"
	"github.com/letgo-hpc/letgo/internal/core"
	"github.com/letgo-hpc/letgo/internal/isa"
	"github.com/letgo-hpc/letgo/internal/lang"
	"github.com/letgo-hpc/letgo/internal/pin"
	"github.com/letgo-hpc/letgo/internal/trace"
	"github.com/letgo-hpc/letgo/internal/vm"
)

func main() {
	appName := flag.String("app", "", "run a built-in benchmark app (LULESH, CLAMR, HPL, COMD, SNAP, PENNANT)")
	mode := flag.String("mode", "E", "LetGo mode: off, B (basic), E (enhanced)")
	budget := flag.Uint64("budget", 1<<28, "instruction budget before declaring a hang")
	events := flag.Bool("events", false, "print the LetGo repair event log")
	traceN := flag.Int("trace", 0, "keep an N-instruction history and print a crash report on faults (mode off only)")
	flag.Parse()

	prog, app, err := loadProgram(*appName, flag.Args())
	if err != nil {
		fatal(err)
	}

	m, err := vm.New(prog, vm.Config{Out: os.Stdout})
	if err != nil {
		fatal(err)
	}

	if strings.EqualFold(*mode, "off") {
		var ring *trace.Ring
		var err error
		if *traceN > 0 {
			ring = trace.NewRing(*traceN)
			err = trace.RunTraced(m, ring, *budget)
		} else {
			err = m.Run(*budget)
		}
		switch {
		case err == nil:
			fmt.Println("outcome: completed")
		case err == vm.ErrBudget:
			fmt.Println("outcome: hang (budget exhausted)")
		default:
			fmt.Printf("outcome: crashed (%v)\n", err)
			if trap, ok := err.(*vm.Trap); ok && ring != nil {
				trace.CrashReport(os.Stdout, m, trap, ring)
			}
		}
		report(app, m)
		return
	}

	opts := core.Options{Mode: core.ModeEnhanced}
	if strings.EqualFold(*mode, "B") {
		opts.Mode = core.ModeBasic
	}
	runner := core.Attach(m, pin.Analyze(prog), opts)
	res := runner.Run(*budget)
	fmt.Printf("outcome: %v  signal: %v  crashes elided: %d  retired: %d\n",
		res.Outcome, res.Signal, res.Repairs, res.Retired)
	if *events {
		fmt.Print(trace.FormatEvents(res.Events))
	}
	report(app, m)
}

// loadProgram resolves the input program from -app or a file argument.
func loadProgram(appName string, args []string) (*isa.Program, *apps.App, error) {
	if appName != "" {
		a, ok := apps.ByName(appName)
		if !ok {
			return nil, nil, fmt.Errorf("unknown app %q", appName)
		}
		p, err := a.Compile()
		return p, a, err
	}
	if len(args) != 1 {
		return nil, nil, fmt.Errorf("usage: letgo-run [-app NAME | file.{mc,s,lgo}]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return nil, nil, err
	}
	switch {
	case strings.HasSuffix(args[0], ".mc"):
		p, err := lang.Compile(string(data))
		return p, nil, err
	case strings.HasSuffix(args[0], ".s"):
		p, err := asm.Assemble(string(data))
		return p, nil, err
	default:
		var p isa.Program
		if err := p.UnmarshalBinary(data); err != nil {
			return nil, nil, err
		}
		return &p, nil, nil
	}
}

// report runs the app's acceptance check when a benchmark was requested
// and the machine finished.
func report(app *apps.App, m *vm.Machine) {
	if app == nil || !m.Halted {
		return
	}
	ok, err := app.Accept(m)
	if err != nil {
		fmt.Printf("acceptance check: error: %v\n", err)
		return
	}
	fmt.Printf("acceptance check (%s): passed=%v\n", app.Name, ok)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "letgo-run:", err)
	os.Exit(1)
}
