// letgo-sim runs the Section-7 checkpoint/restart simulation and prints
// the Figure-7 and Figure-8 series (efficiency with and without LetGo).
//
// By default the model is seeded with the probabilities derived from the
// paper's own Table 3 (-seed-source paper); -seed-source measured runs a
// fresh fault-injection campaign first and uses its probabilities.
//
// Usage:
//
//	letgo-sim -fig 7 -app LULESH
//	letgo-sim -fig 8 -app CLAMR -tchk 1200
//	letgo-sim -app SNAP -tchk 120 -sync 0.5 -mtbfaults 21600
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	letgo "github.com/letgo-hpc/letgo"
	"github.com/letgo-hpc/letgo/internal/analysis"
	"github.com/letgo-hpc/letgo/internal/apps"
	"github.com/letgo-hpc/letgo/internal/checkpoint"
	"github.com/letgo-hpc/letgo/internal/inject"
	"github.com/letgo-hpc/letgo/internal/obs"
	"github.com/letgo-hpc/letgo/internal/obs/serve"
	"github.com/letgo-hpc/letgo/internal/report"
	"github.com/letgo-hpc/letgo/internal/resilience"
	"github.com/letgo-hpc/letgo/internal/stats"
)

// telem holds the optional observability sinks (-metrics-out,
// -events-json, -progress); all-off by default so the stdout figures
// are byte-identical without the flags.
var telem *obs.Sinks

// plane is the -serve observability server; nil without the flag. Closed
// explicitly in the os.Exit paths (fatal/interrupted) where defers don't
// run, so SSE streams end cleanly.
var plane *serve.Server

func main() {
	fig := flag.Int("fig", 0, "regenerate a paper figure: 7 or 8 (0 = single configuration)")
	appName := flag.String("app", "LULESH", "benchmark app")
	tchk := flag.Float64("tchk", 120, "checkpoint cost, seconds (Figure 8 / single run)")
	sync := flag.Float64("sync", 0.10, "synchronization overhead as a fraction of tchk")
	mtbFaults := flag.Float64("mtbfaults", 21600, "mean time between faults, seconds")
	seedSource := flag.String("seed-source", "paper", "probability source: paper (Table 3) or measured (run a campaign)")
	ckptModel := flag.String("ckpt-model", "paper", "checkpoint cost model: paper (T_chk as given) or derived (scale T_chk by the app's analysis-derived minimal checkpoint set)")
	n := flag.Int("n", 1000, "injections for -seed-source measured")
	seed := flag.Uint64("seed", 2017, "simulation seed")
	horizon := flag.Float64("horizon", checkpoint.DefaultHorizon, "simulated seconds")
	advise := flag.Bool("advise", false, "print the operator recommendation (use LetGo or not) for this configuration")
	formatFlag := flag.String("format", "text", "figure output format: text, markdown, csv or json")
	metricsOut := flag.String("metrics-out", "", "write a metrics dump on exit (Prometheus text; JSON when the path ends in .json)")
	eventsJSON := flag.String("events-json", "", "stream structured JSONL events to this file")
	progress := flag.Bool("progress", false, "render live simulation progress on stderr")
	serveAddr := flag.String("serve", "", "serve the live observability plane on this address (/metrics, /events, /status, /healthz, /debug/pprof)")
	journalPath := flag.String("journal", "", "journal for -seed-source measured campaigns (crash-safe JSONL; enables -resume)")
	resume := flag.Bool("resume", false, "restore completed injections from the -journal file instead of re-executing them")
	watchdog := flag.Duration("watchdog", 0, "per-injection wall-clock bound for measured campaigns (0 = off)")
	flag.Parse()

	format, err := report.ParseFormat(*formatFlag)
	if err != nil {
		fatal(err)
	}

	if telem, err = obs.Open(obs.Options{
		MetricsOut: *metricsOut, EventsJSON: *eventsJSON,
		Progress: *progress, Serve: *serveAddr != "",
	}); err != nil {
		fatal(err)
	}
	if *serveAddr != "" {
		if plane, err = serve.ForSinks(*serveAddr, telem); err != nil {
			fatal(err)
		}
		defer plane.Close()
		fmt.Fprintf(os.Stderr, "letgo-sim: observability plane on http://%s (metrics, events, status, healthz, debug/pprof)\n", plane.Addr())
	}

	if *resume && *journalPath == "" {
		fatal(fmt.Errorf("-resume requires -journal"))
	}
	var journal *resilience.Journal
	if *journalPath != "" {
		if *resume {
			journal, err = resilience.Open(*journalPath)
		} else {
			journal, err = resilience.Create(*journalPath)
		}
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	probs, err := resolveProbabilities(ctx, *seedSource, *appName, *n, *seed, journal, *watchdog)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, errInterrupted) {
			interrupted(journal)
		}
		fatal(err)
	}
	// Resolve the checkpoint cost model: "paper" charges T_chk as given;
	// "derived" runs the memory-dependency analysis on the app and scales
	// T_chk to the minimal checkpoint set it derives.
	costOf := func(t float64) float64 { return t }
	var state *analysis.StateSet
	switch *ckptModel {
	case "paper":
	case "derived":
		a, ok := apps.ByName(*appName)
		if !ok {
			fatal(fmt.Errorf("-ckpt-model derived: unknown app %q", *appName))
		}
		sp := telem.Hub.StartSpan("analysis", "app", a.Name)
		state, err = analysis.CheckpointSet(a)
		sp.End()
		if err != nil {
			fatal(fmt.Errorf("-ckpt-model derived: %w", err))
		}
		costOf = func(t float64) float64 {
			return checkpoint.DerivedCheckpointCost(t, state.DerivedBytes, state.FullBytes)
		}
		telem.Status.SetCkptModel("derived")
		telem.Status.SetAnalysis(state.RegionCount(), state.Live.Count(), state.DerivedBytes, state.FullBytes)
	default:
		fatal(fmt.Errorf("unknown -ckpt-model %q (want paper or derived)", *ckptModel))
	}
	var tracer checkpoint.Tracer
	if telem.Enabled() {
		tracer = checkpoint.NewObsTracer(telem.Hub, telem.Progress)
		telem.Hub.Emit(obs.PhaseEvent{App: probs.Name, Phase: "simulate"})
		telem.Progress.Start("simulate "+probs.Name, 0)
	}
	if format == report.Text {
		fmt.Printf("# %s: P_crash=%.3f P_v=%.3f P_v'=%.3f P_letgo=%.3f (%s)\n",
			probs.Name, probs.PCrash, probs.PV, probs.PVPrime, probs.PLetGo, *seedSource)
		if state != nil {
			fmt.Printf("# derived checkpoint: %d of %d bytes (%.4f%%), %d of %d regions live, T_chk scale %.4f\n",
				state.DerivedBytes, state.FullBytes,
				100*float64(state.DerivedBytes)/float64(state.FullBytes),
				state.Live.Count(), state.RegionCount(),
				costOf(1))
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	if *advise {
		params := checkpoint.ParamsFor(probs, costOf(*tchk), *sync, *mtbFaults)
		a, err := checkpoint.Advise(params, checkpoint.AdviseConfig{ContinuedSDC: probs.ContinuedSDC, Seed: *seed, Horizon: *horizon})
		if err != nil {
			fatal(err)
		}
		verdict := "do NOT enable LetGo"
		if a.UseLetGo {
			verdict = "enable LetGo"
		}
		fmt.Fprintf(w, "recommendation\t%s\n", verdict)
		fmt.Fprintf(w, "reason\t%s\n", a.Reason)
		fmt.Fprintf(w, "efficiency\tstandard %.4f, letgo %.4f (gain %+.4f)\n", a.EffStandard, a.EffLetGo, a.Gain)
		finish()
		return
	}

	switch *fig {
	case 7:
		pts, err := checkpoint.SweepCheckpointCostModelTraced(probs, []float64{12, 120, 1200}, costOf, *sync, *mtbFaults, *seed, *horizon, tracer)
		if err != nil {
			fatal(err)
		}
		if format != report.Text {
			rows := report.SimRows(probs.Name, "tchk", pts)
			annotate(rows, *ckptModel, state)
			if err := report.Sims(os.Stdout, format, rows); err != nil {
				fatal(err)
			}
			finish()
			return
		}
		fmt.Fprintf(w, "T_chk\tEff(standard)\tEff(LetGo)\tGain\n")
		for _, p := range pts {
			fmt.Fprintf(w, "%.0f\t%.4f\t%.4f\t%+.4f\n", p.X, p.Standard, p.LetGo, p.Gain())
		}
	case 8:
		pts, err := checkpoint.SweepScaleTraced(probs, costOf(*tchk), *sync, []int{100_000, 200_000, 400_000}, *seed, *horizon, tracer)
		if err != nil {
			fatal(err)
		}
		if format != report.Text {
			rows := report.SimRows(probs.Name, "nodes", pts)
			annotate(rows, *ckptModel, state)
			if err := report.Sims(os.Stdout, format, rows); err != nil {
				fatal(err)
			}
			finish()
			return
		}
		fmt.Fprintf(w, "Nodes\tEff(standard)\tEff(LetGo)\tGain\n")
		for _, p := range pts {
			fmt.Fprintf(w, "%.0f\t%.4f\t%.4f\t%+.4f\n", p.X, p.Standard, p.LetGo, p.Gain())
		}
	case 0:
		params := checkpoint.ParamsFor(probs, costOf(*tchk), *sync, *mtbFaults)
		std, lg, err := checkpoint.CompareTraced(params, stats.NewRNG(*seed), *horizon, tracer)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "Arm\tEfficiency\tCheckpoints\tRollbacks\tCrashes\tElided\n")
		fmt.Fprintf(w, "standard\t%.4f\t%d\t%d\t%d\t-\n",
			std.Efficiency(), std.Checkpoints, std.Rollbacks, std.Crashes)
		fmt.Fprintf(w, "letgo\t%.4f\t%d\t%d\t%d\t%d\n",
			lg.Efficiency(), lg.Checkpoints, lg.Rollbacks, lg.Crashes, lg.Elided)
	default:
		fatal(fmt.Errorf("unknown figure %d (want 7 or 8)", *fig))
	}
	finish()
}

// annotate stamps derived-model provenance onto sweep rows (JSON only;
// a no-op for the paper model, keeping existing consumers byte-stable).
func annotate(rows []report.SimRow, model string, state *analysis.StateSet) {
	if state == nil {
		return
	}
	report.AnnotateCkptModel(rows, model, state.DerivedBytes, state.FullBytes)
}

// finish flushes the progress line and writes the metric/event sinks.
func finish() {
	telem.Progress.Finish()
	if err := telem.Close(); err != nil {
		fatal(err)
	}
}

// errInterrupted marks a measured campaign cut short by SIGINT/SIGTERM:
// its partial probabilities would not be reproducible, so the simulation
// is not seeded from them.
var errInterrupted = errors.New("measured campaign interrupted; rerun with -resume to finish it")

// interrupted prints the resume hint and exits with the interrupted code.
func interrupted(j *resilience.Journal) {
	plane.Close()
	msg := "letgo-sim: interrupted"
	if j != nil {
		msg += fmt.Sprintf(" (resume with -resume -journal %s)", j.Path())
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(3)
}

func resolveProbabilities(ctx context.Context, source, appName string, n int, seed uint64, journal *resilience.Journal, watchdog time.Duration) (checkpoint.AppProbabilities, error) {
	switch source {
	case "paper":
		p, ok := checkpoint.PaperAppByName(appName)
		if !ok {
			return checkpoint.AppProbabilities{}, fmt.Errorf("no paper probabilities for %q", appName)
		}
		return p, nil
	case "measured":
		a, ok := apps.ByName(appName)
		if !ok {
			return checkpoint.AppProbabilities{}, fmt.Errorf("unknown app %q", appName)
		}
		c := &inject.Campaign{
			App: a, Mode: inject.LetGoE, N: n, Seed: seed,
			Journal: journal, Watchdog: watchdog,
		}
		if telem.Enabled() {
			c.Obs = telem.Hub
			c.Observer = inject.NewObsObserver(a.Name, inject.LetGoE, n, telem.Hub, telem.Progress, telem.Status)
		}
		r, err := c.RunContext(ctx)
		if err != nil {
			return checkpoint.AppProbabilities{}, err
		}
		if r.Interrupted {
			return checkpoint.AppProbabilities{}, errInterrupted
		}
		return letgo.ProbabilitiesFromCampaign(r)
	}
	return checkpoint.AppProbabilities{}, fmt.Errorf("unknown seed source %q", source)
}

func fatal(err error) {
	plane.Close()
	fmt.Fprintln(os.Stderr, "letgo-sim:", err)
	os.Exit(1)
}
