// Engine benchmarks: the fork-replay substrate against the classic
// rerun-from-PC-0 substrate, on identical campaigns (same app, seed, N —
// so byte-identical outcome tables). Each benchmark merges its headline
// numbers into BENCH_engine.json at the repo root, the machine-readable
// record EXPERIMENTS.md E15 interprets:
//
//	go test -bench 'BenchmarkCampaign(Fork|Rerun)' -benchtime 1x .
package letgo

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/letgo-hpc/letgo/internal/inject"
)

// engineBenchN is sized so the prefix-sharing effect dominates: with 500
// injections the rerun engine executes ~500 golden prefixes, the fork
// engine roughly one plus N*K/2 replayed instructions.
const engineBenchN = 500

// engineBenchEntry is one benchmark record in BENCH_engine.json.
type engineBenchEntry struct {
	App            string  `json:"app"`
	Engine         string  `json:"engine"`
	N              int     `json:"n"`
	NsPerOp        float64 `json:"ns_per_op"`
	Waypoints      int     `json:"waypoints"`
	Forks          uint64  `json:"forks"`
	PagesCopied    uint64  `json:"pages_copied"`
	InstrsReplayed uint64  `json:"instrs_replayed"`
	InstrsSaved    uint64  `json:"instrs_saved"`
	GoldenInstrs   uint64  `json:"golden_instrs"`
}

// mergeEngineBench read-merge-writes one entry into BENCH_engine.json,
// keyed by (app, engine, n), so fork and rerun runs accumulate into one
// comparable record regardless of invocation order.
func mergeEngineBench(b *testing.B, e engineBenchEntry) {
	b.Helper()
	const path = "BENCH_engine.json"
	var entries []engineBenchEntry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			b.Logf("ignoring unparsable %s: %v", path, err)
			entries = nil
		}
	}
	replaced := false
	for i, old := range entries {
		if old.App == e.App && old.Engine == e.Engine && old.N == e.N {
			entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, e)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func benchCampaignEngine(b *testing.B, appName string, eng inject.Engine) {
	app, ok := AppByName(appName)
	if !ok {
		b.Fatalf("unknown app %s", appName)
	}
	// NoLetGo is the paper's baseline crash-measurement mode and the
	// engine's best case: the ~56% of runs that crash do so within a
	// short latency, so nearly all of their cost is the clean prefix —
	// exactly the work fork-replay shares instead of re-executing.
	var r *CampaignResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &Campaign{App: app, Mode: NoLetGo, N: engineBenchN, Seed: 2017, Engine: eng}
		var err error
		if r, err = c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	s := r.EngineStats
	b.ReportMetric(float64(s.PagesCopied), "pages_copied")
	b.ReportMetric(float64(s.InstrsReplayed), "instrs_replayed")
	b.ReportMetric(float64(s.InstrsSaved), "instrs_saved")
	mergeEngineBench(b, engineBenchEntry{
		App: appName, Engine: eng.String(), N: engineBenchN,
		NsPerOp:   nsPerOp,
		Waypoints: s.Waypoints, Forks: s.Forks, PagesCopied: s.PagesCopied,
		InstrsReplayed: s.InstrsReplayed, InstrsSaved: s.InstrsSaved,
		GoldenInstrs: r.GoldenRetired,
	})
}

// BenchmarkCampaignFork runs a full LetGo-E campaign on the fork-replay
// engine (golden recorded once, injections positioned by COW fork +
// delta replay).
func BenchmarkCampaignFork(b *testing.B) {
	benchCampaignEngine(b, "CLAMR", inject.EngineFork)
}

// BenchmarkCampaignRerun is the identical campaign on the rerun engine:
// every injection re-executes the program from PC 0 to its site.
func BenchmarkCampaignRerun(b *testing.B) {
	benchCampaignEngine(b, "CLAMR", inject.EngineRerun)
}
