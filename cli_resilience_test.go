package letgo

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildInject compiles the letgo-inject binary once per test into dir, so
// signal-delivery tests target the tool itself rather than `go run`'s
// wrapper process.
func buildInject(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "letgo-inject")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/letgo-inject").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/letgo-inject: %v\n%s", err, out)
	}
	return bin
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// TestInjectCLIErrorPaths pins the exit-code contract: 1 for usage and
// I/O errors, 2 for unparseable flags, 3 for interrupted runs.
func TestInjectCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain")
	}
	bin := buildInject(t, t.TempDir())
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"bad mode", []string{"-apps", "CLAMR", "-n", "4", "-mode", "Z"}, 1, "unknown mode"},
		{"bad engine", []string{"-apps", "CLAMR", "-n", "4", "-engine", "warp"}, 1, "unknown engine"},
		{"bad app", []string{"-apps", "NOPE", "-n", "4"}, 1, "unknown app"},
		{"bad format", []string{"-apps", "CLAMR", "-n", "4", "-format", "yaml"}, 1, "unknown format"},
		{"unwritable journal", []string{"-apps", "CLAMR", "-n", "4", "-journal", filepath.Join(t.TempDir(), "no", "dir", "j.jsonl")}, 1, "no such file"},
		{"resume without journal", []string{"-apps", "CLAMR", "-n", "4", "-resume"}, 1, "-resume requires -journal"},
		{"unparseable flag", []string{"-n", "not-a-number"}, 2, "invalid value"},
		{"deadline already expired", []string{"-apps", "CLAMR", "-n", "50", "-deadline", "1ns"}, 3, "interrupted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if code := exitCode(err); code != tc.wantCode {
				t.Errorf("exit code = %d, want %d\n%s", code, tc.wantCode, out)
			}
			if !strings.Contains(string(out), tc.wantErr) {
				t.Errorf("output missing %q:\n%s", tc.wantErr, out)
			}
		})
	}
}

// TestInjectCLIKillAndResume delivers a real SIGINT mid-campaign, checks
// the partial exit (code 3, interrupted banner, journal on disk), then
// resumes and requires the final table to be byte-identical to an
// uninterrupted invocation.
func TestInjectCLIKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the toolchain")
	}
	dir := t.TempDir()
	bin := buildInject(t, dir)
	journal := filepath.Join(dir, "campaign.jsonl")
	args := []string{"-apps", "CLAMR", "-n", "4000", "-mode", "E", "-seed", "11", "-workers", "2"}

	// Reference: the same campaign, uninterrupted.
	want, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cmd := exec.Command(bin, append(args, "-journal", journal)...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	if code := exitCode(err); code == 0 {
		t.Skip("campaign finished before the signal landed; nothing to resume")
	} else if code != 3 {
		t.Fatalf("interrupted run exit code = %d, want 3\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted:") || !strings.Contains(stderr.String(), "-resume") {
		t.Errorf("missing interrupted banner on stderr: %s", stderr.String())
	}
	if fi, err := os.Stat(journal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal missing after interrupt: %v", err)
	}

	got, err := exec.Command(bin, append(args, "-journal", journal, "-resume")...).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("resumed table differs from uninterrupted run:\n--- resumed\n%s--- reference\n%s", got, want)
	}
}
