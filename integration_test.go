package letgo

import (
	"math"
	"testing"

	"github.com/letgo-hpc/letgo/internal/cluster"
	"github.com/letgo-hpc/letgo/internal/outcome"
)

// TestEndToEndAllApps is the cross-module integration test: every
// benchmark app goes through compile -> golden run -> small campaigns in
// all three modes -> metric sanity -> C/R model seeding. It exercises the
// same pipeline as the paper's full evaluation, scaled down.
func TestEndToEndAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n = 80
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			var results [3]*CampaignResult
			for i, mode := range []InjectionMode{NoLetGo, LetGoB, LetGoE} {
				r, err := (&Campaign{App: app, Mode: mode, N: n, Seed: 77}).Run()
				if err != nil {
					t.Fatalf("%v campaign: %v", mode, err)
				}
				if r.Counts.N != n {
					t.Fatalf("%v campaign incomplete", mode)
				}
				results[i] = r
			}
			none, bas, enh := results[0], results[1], results[2]

			// Fault sampling is mode-independent: identical seeds give
			// identical crash-branch sizes.
			if none.Counts.CrashTotal() != bas.Counts.CrashTotal() ||
				none.Counts.CrashTotal() != enh.Counts.CrashTotal() {
				t.Errorf("crash totals differ across modes: %d/%d/%d",
					none.Counts.CrashTotal(), bas.Counts.CrashTotal(), enh.Counts.CrashTotal())
			}
			// Without LetGo every crash stays a crash.
			if none.Counts.By[Crash] != none.Counts.CrashTotal() {
				t.Error("baseline campaign has continued outcomes")
			}
			// With LetGo-E a nontrivial fraction of crashes continues.
			if enh.Metrics.Continuability == 0 && enh.Counts.CrashTotal() > 5 {
				t.Error("LetGo-E elided nothing")
			}
			// Finished-branch outcomes (Benign/SDC/Detected as fractions
			// of non-crash faults) are identical across modes: LetGo only
			// acts on crashes.
			for _, cl := range []OutcomeClass{Benign, SDC, Detected} {
				if none.Counts.By[cl] != enh.Counts.By[cl] {
					t.Errorf("%v differs between baseline and LetGo-E", cl)
				}
			}
			// Derived C/R probabilities must be sane.
			probs, err := ProbabilitiesFromCampaign(enh)
			if err != nil {
				t.Fatal(err)
			}
			for name, v := range map[string]float64{
				"PCrash": probs.PCrash, "PV": probs.PV,
				"PVPrime": probs.PVPrime, "PLetGo": probs.PLetGo,
			} {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Errorf("%s = %v", name, v)
				}
			}
		})
	}
}

// TestModelVsHarness cross-validates the analytic Section-7 model against
// the executed cluster harness: with equivalent parameters, both must
// agree that (a) efficiency is below 1, (b) LetGo improves it.
func TestModelVsHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	app, _ := AppByName("SNAP")
	prog, err := app.Compile()
	if err != nil {
		t.Fatal(err)
	}

	var effStd, effLG float64
	for seed := uint64(0); seed < 6; seed++ {
		cfg := cluster.Config{
			Prog:                    prog,
			Ranks:                   2,
			CheckpointInterval:      60_000,
			CheckpointCost:          3_000,
			RecoveryCost:            3_000,
			MeanInstrsBetweenFaults: 80_000,
			Seed:                    seed,
			MaxCost:                 1 << 28,
		}
		std, err := cluster.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.UseLetGo = true
		lg, err := cluster.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		effStd += std.Efficiency()
		effLG += lg.Efficiency()
	}
	effStd /= 6
	effLG /= 6
	t.Logf("harness: standard %.4f, letgo %.4f", effStd, effLG)
	if effStd <= 0 || effStd >= 1 || effLG <= 0 || effLG >= 1 {
		t.Fatalf("harness efficiencies out of range: %v %v", effStd, effLG)
	}
	if effLG < effStd {
		t.Errorf("harness: LetGo did not improve efficiency (%.4f < %.4f)", effLG, effStd)
	}

	// The analytic model with the paper's probabilities must agree on the
	// direction.
	probs, _ := PaperAppByName("SNAP")
	params := CRParamsFor(probs, 120, 0.10, 21600)
	std, err := SimulateStandard(params, NewRNG(1), 5e8)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := SimulateLetGo(params, NewRNG(2), 5e8)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Efficiency() <= std.Efficiency() {
		t.Errorf("model: LetGo did not improve efficiency")
	}
}

// TestOutcomeTaxonomyAcrossModes checks Figure-4 bookkeeping invariants
// over a real campaign: classes partition the runs, and the crash branch
// matches PCrash.
func TestOutcomeTaxonomyAcrossModes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	app, _ := AppByName("CLAMR")
	r, err := (&Campaign{App: app, Mode: LetGoE, N: 150, Seed: 5}).Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for cl := outcome.Class(0); cl < outcome.NumClasses; cl++ {
		sum += r.Counts.By[cl]
	}
	if sum != r.Counts.N {
		t.Errorf("classes do not partition runs: %d vs %d", sum, r.Counts.N)
	}
	if got := float64(r.Counts.CrashTotal()) / float64(r.Counts.N); math.Abs(got-r.PCrash) > 1e-12 {
		t.Errorf("PCrash inconsistent: %v vs %v", got, r.PCrash)
	}
}
