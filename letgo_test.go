package letgo

import (
	"strings"
	"testing"
)

const quickSrc = `
	var out float;
	func main() {
		var i int;
		var acc float;
		for (i = 0; i < 100; i = i + 1) {
			acc = acc + sqrt(float(i));
		}
		out = acc;
	}
`

func TestCompileAndRun(t *testing.T) {
	p, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(p, MachineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadGlobalFloat("out", 0)
	if err != nil || v < 600 || v > 700 {
		t.Fatalf("out = %v, %v", v, err)
	}
}

func TestCompileToAsmAndAssemble(t *testing.T) {
	text, err := CompileToAsm(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(p)
	if !strings.Contains(dis, "main:") {
		t.Error("disassembly missing main")
	}
}

func TestRunUnderLetGo(t *testing.T) {
	// A program whose pointer is corrupted mid-run: dies bare, survives
	// under LetGo-E.
	src := `
		var data [16] float;
		var out float;
		func main() {
			var i int;
			for (i = 0; i < 16; i = i + 1) { data[i] = float(i); }
			out = data[5] + data[700000000];   // wild index: SIGSEGV
			out = out + 1.0;
		}
	`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Run(p, Options{Mode: ModeEnhanced}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RunCompleted || res.Repairs != 1 {
		t.Fatalf("res = %+v, want one elided crash", res)
	}
	// Without LetGo the same program must die: simulate by intercepting
	// nothing.
	res2, _, err := Run(p, Options{Mode: ModeEnhanced, Signals: []Signal{}}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != RunCrashed || res2.Signal != SIGSEGV {
		t.Fatalf("res2 = %+v, want SIGSEGV crash", res2)
	}
}

func TestAppsExposed(t *testing.T) {
	if len(Apps()) != 6 || len(IterativeApps()) != 5 {
		t.Fatal("app registry wrong")
	}
	a, ok := AppByName("SNAP")
	if !ok {
		t.Fatal("SNAP missing")
	}
	if _, err := a.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignThroughFacade(t *testing.T) {
	a, _ := AppByName("SNAP")
	c := &Campaign{App: a, Mode: LetGoE, N: 60, Seed: 5}
	r, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts.N != 60 {
		t.Fatalf("N = %d", r.Counts.N)
	}
	probs, err := ProbabilitiesFromCampaign(r)
	if err != nil {
		t.Fatal(err)
	}
	if probs.PCrash <= 0 || probs.PCrash >= 1 {
		t.Errorf("PCrash = %v", probs.PCrash)
	}
	if probs.PLetGo != r.Metrics.Continuability {
		t.Error("PLetGo mismatch")
	}
	// Feed the measured probabilities into the C/R model.
	params := CRParamsFor(probs, 120, 0.10, 21600)
	std, err := SimulateStandard(params, NewRNG(1), 1e8)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := SimulateLetGo(params, NewRNG(2), 1e8)
	if err != nil {
		t.Fatal(err)
	}
	if std.Efficiency() <= 0 || lg.Efficiency() <= 0 {
		t.Error("efficiencies not positive")
	}
}

func TestProbabilitiesFromCampaignValidation(t *testing.T) {
	if _, err := ProbabilitiesFromCampaign(nil); err == nil {
		t.Error("nil campaign accepted")
	}
	if _, err := ProbabilitiesFromCampaign(&CampaignResult{}); err == nil {
		t.Error("empty campaign accepted")
	}
}

func TestPaperSeededFigures(t *testing.T) {
	if len(PaperApps()) != 5 {
		t.Fatal("paper apps wrong")
	}
	app, ok := PaperAppByName("LULESH")
	if !ok {
		t.Fatal("LULESH paper probabilities missing")
	}
	pts, err := Figure7(app, 3)
	if err != nil || len(pts) != 3 {
		t.Fatalf("Figure7: %v, %d points", err, len(pts))
	}
	for _, p := range pts {
		if p.Gain() < 0 {
			t.Errorf("negative gain at tchk=%v", p.X)
		}
	}
	pts8, err := Figure8(app, 1200, 4)
	if err != nil || len(pts8) != 3 {
		t.Fatalf("Figure8: %v", err)
	}
}
