package letgo

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main end to end — the examples
// are deliverables, not decoration, so they must keep working.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run the toolchain")
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{"./examples/quickstart", nil, []string{"with LetGo-E:  completed", "repaired SIGSEGV"}},
		{"./examples/faultcampaign", []string{"-app", "SNAP", "-n", "60"}, []string{"SNAP under none", "crash rate"}},
		{"./examples/checkpointing", []string{"-app", "CLAMR"}, []string{"Figure 7", "gain +"}},
		{"./examples/customapp", nil, []string{"golden run:", "continuability"}},
		{"./examples/clusterjob", []string{"-jobs", "3", "-ranks", "2"}, []string{"standard C/R", "C/R + LetGo-E", "crashes elided"}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", append([]string{"run", c.dir}, c.args...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
