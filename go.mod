module github.com/letgo-hpc/letgo

go 1.22
