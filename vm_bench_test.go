// VM dispatch benchmarks: the reference Step interpreter (fetch + decode
// + giant switch per instruction) against the predecoded Drive fast path
// (decode-once program image, dense dispatch loop), executing the same
// app to completion. Each variant merges its headline numbers into
// BENCH_vm.json at the repo root; the drive entry records its speedup
// over the step entry once both exist:
//
//	go test -bench BenchmarkVMDispatch -benchtime 3x .
package letgo

import (
	"encoding/json"
	"errors"
	"os"
	"testing"

	"github.com/letgo-hpc/letgo/internal/vm"
)

// vmBenchApp is the dispatch workload: CLAMR is the campaign workhorse
// (see BENCH_engine.json), so its instruction mix is the one the
// injection engines actually pay for.
const vmBenchApp = "CLAMR"

// vmBenchEntry is one benchmark record in BENCH_vm.json.
type vmBenchEntry struct {
	App     string  `json:"app"`
	Variant string  `json:"variant"` // "step" (reference) | "drive" (predecoded)
	NsPerOp float64 `json:"ns_per_op"`
	Instrs  uint64  `json:"instrs"` // retired instructions per op
	MIPS    float64 `json:"minstrs_per_sec"`
	// SpeedupVsStep is filled on the drive entry when the matching step
	// entry exists (ISSUE 4 requires >= 1.5).
	SpeedupVsStep float64 `json:"speedup_vs_step,omitempty"`
}

// mergeVMBench read-merge-writes one entry into BENCH_vm.json, keyed by
// (app, variant), recomputing each drive entry's speedup against its
// step counterpart so the file stays consistent regardless of which
// variant ran last.
func mergeVMBench(b *testing.B, e vmBenchEntry) {
	b.Helper()
	const path = "BENCH_vm.json"
	var entries []vmBenchEntry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			b.Logf("ignoring unparsable %s: %v", path, err)
			entries = nil
		}
	}
	replaced := false
	for i, old := range entries {
		if old.App == e.App && old.Variant == e.Variant {
			entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, e)
	}
	step := map[string]float64{}
	for _, en := range entries {
		if en.Variant == "step" {
			step[en.App] = en.NsPerOp
		}
	}
	for i := range entries {
		if entries[i].Variant == "drive" && step[entries[i].App] > 0 {
			entries[i].SpeedupVsStep = step[entries[i].App] / entries[i].NsPerOp
		}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// runStepLoop is the pre-refactor execution loop: per-instruction fetch,
// operand decode and switch dispatch through vm.Step, with the same
// halt-before-budget tie-break as vm.Drive.
func runStepLoop(m *vm.Machine, budget uint64) error {
	for {
		if m.Halted {
			return nil
		}
		if m.Retired >= budget {
			return vm.ErrBudget
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
}

func benchVMDispatch(b *testing.B, variant string, run func(*vm.Machine, uint64) error) {
	app, ok := AppByName(vmBenchApp)
	if !ok {
		b.Fatalf("unknown app %s", vmBenchApp)
	}
	prog, err := app.Compile()
	if err != nil {
		b.Fatal(err)
	}
	const budget = 1 << 31
	var retired uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := vm.New(prog, vm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := run(m, budget); err != nil {
			b.Fatal(err)
		}
		retired = m.Retired
	}
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	mips := float64(retired) / nsPerOp * 1e3
	b.ReportMetric(mips, "Minstrs/s")
	mergeVMBench(b, vmBenchEntry{
		App: vmBenchApp, Variant: variant,
		NsPerOp: nsPerOp, Instrs: retired, MIPS: mips,
	})
}

// BenchmarkVMDispatch compares the two execution paths on a full app run.
func BenchmarkVMDispatch(b *testing.B) {
	b.Run("step", func(b *testing.B) {
		benchVMDispatch(b, "step", runStepLoop)
	})
	b.Run("drive", func(b *testing.B) {
		benchVMDispatch(b, "drive", func(m *vm.Machine, budget uint64) error {
			stop := vm.Drive(m, budget, vm.Hooks{})
			switch stop.Reason {
			case vm.StopHalted:
				return nil
			case vm.StopBudget:
				return vm.ErrBudget
			case vm.StopTrap:
				return stop.Trap
			}
			if stop.Err != nil {
				return stop.Err
			}
			return errors.New("unexpected stop")
		})
	})
}
