package letgo

import (
	"flag"
	"os"
	"strings"
	"testing"

	"github.com/letgo-hpc/letgo/internal/analysis"
	"github.com/letgo-hpc/letgo/internal/apps"
	"github.com/letgo-hpc/letgo/internal/asm"
)

// updateSnapshots regenerates the committed analysis snapshot instead of
// comparing against it: go test -run AnalysisSnapshot -update .
var updateSnapshots = flag.Bool("update", false, "rewrite golden snapshot files")

const analysisSnapshotPath = "results/analysis-snapshot.txt"

// snapshotDemo is a hand-written assembly workload included in the
// snapshot alongside the MiniC apps: its derived checkpoint set is a
// strict subset of the address space by construction (out and in live,
// scratch dropped).
const snapshotDemo = `
	.entry _start
	.global in 8
	.global out 8
	.global scratch 16
	_start:
	    call main
	    halt
	main:
	    push bp
	    mov bp, sp
	    li x1, in
	    ld x2, [x1+0]
	    addi x2, x2, 1
	    li x3, out
	    st x2, [x3+0]
	    li x4, 99
	    li x5, scratch
	    st x4, [x5+0]
	    ld x6, [x5+0]
	    mov sp, bp
	    pop bp
	    ret
`

// analysisSnapshot renders the byte-stable snapshot: every app's derived
// checkpoint state set, plus the hand-written demo program.
func analysisSnapshot(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("# Derived minimal checkpoint sets (memory-dependency analysis)\n")
	b.WriteString("# Regenerate: go test -run AnalysisSnapshot -update .\n")

	all := apps.All()
	all = append(all, apps.Extensions()...)
	for _, a := range all {
		ss, err := analysis.CheckpointSet(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		b.WriteString("\n## " + a.Name + "\n")
		b.WriteString(ss.Describe())
	}

	prog, err := asm.Assemble(snapshotDemo)
	if err != nil {
		t.Fatalf("demo: %v", err)
	}
	ss, err := analysis.Analyze(prog).CheckpointSet([]string{"out"})
	if err != nil {
		t.Fatalf("demo: %v", err)
	}
	b.WriteString("\n## asm-demo\n")
	b.WriteString(ss.Describe())
	return b.String()
}

// TestAnalysisSnapshotGolden pins the analysis results byte-for-byte: any
// drift in the region partition, live sets, derived sizes or repair-safe
// site counts fails until the golden is regenerated with -update and the
// change is reviewed.
func TestAnalysisSnapshotGolden(t *testing.T) {
	got := analysisSnapshot(t)
	if *updateSnapshots {
		if err := os.WriteFile(analysisSnapshotPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(analysisSnapshotPath)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run AnalysisSnapshot -update .)", err)
	}
	if got != string(want) {
		t.Errorf("analysis snapshot drifted from %s.\nRegenerate with: go test -run AnalysisSnapshot -update .\n--- got ---\n%s--- want ---\n%s",
			analysisSnapshotPath, got, want)
	}
}
