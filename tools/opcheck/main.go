// opcheck is a vet tool (go vet -vettool=...) that flags switch statements
// over isa.Op with no default clause that do not enumerate every opcode.
// The ISA grows over time; an opcode silently falling through a dispatch
// switch (interpreter, dataflow transfer function, liveness use/def sets)
// is exactly the class of bug that produces wrong campaign numbers rather
// than crashes, so it is enforced mechanically.
//
// A switch annotated with an //opcheck:exhaustive comment (on the switch
// line or the line above) must enumerate every opcode even when it has a
// default clause — the annotation for dispatch cores whose default exists
// only as a can't-happen trap (vm.Step, the predecoded driveFast table):
// without it, adding an opcode would silently route the new instruction
// to the trap instead of an implementation.
//
// The tool speaks cmd/go's unitchecker protocol with only the standard
// library: it answers -V=full and -flags, and otherwise receives a JSON
// *.cfg file describing one package unit (file list, import map, export
// data locations), typechecks the unit against the compiler-produced
// export data, and reports diagnostics on stderr with a nonzero exit.
//
// Usage:
//
//	go build -o /tmp/opcheck ./tools/opcheck
//	go vet -vettool=/tmp/opcheck ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// isaPath is the import path of the package defining the Op type.
const isaPath = "github.com/letgo-hpc/letgo/internal/isa"

// config mirrors the fields of cmd/go's vet.cfg JSON that this tool needs
// (the unitchecker wire format).
type config struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// Protocol preamble: cmd/go probes the tool's identity (for the build
	// cache key) and its flag set before dispatching package units.
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion(progname)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected a single vet .cfg argument (run via go vet -vettool)\n", progname)
		os.Exit(2)
	}

	exit, err := run(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	os.Exit(exit)
}

// printVersion emits the tool-ID line cmd/go parses from -V=full: name,
// "version", and a build ID derived from the executable so cached vet
// results are invalidated when the tool changes.
func printVersion(progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, id)
}

func run(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The facts file must exist for cmd/go to cache the unit; this tool
	// carries no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, &cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags := checkOpSwitches(fset, files, info, pkg)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// typecheck runs go/types over the unit, resolving imports through the
// export-data files cmd/go listed in the config.
func typecheck(fset *token.FileSet, cfg *config, files []*ast.File) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compImp := importer.ForCompiler(fset, cfg.Compiler, lookup)
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return compImp.Import(path)
		}),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// exhaustiveMarker is the comment directive that subjects a switch to the
// full-enumeration rule regardless of its default clause.
const exhaustiveMarker = "opcheck:exhaustive"

// markedLines collects the file lines bearing the exhaustive marker; a
// switch is marked when the directive sits on its own line or the line
// directly above it.
func markedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	var lines map[int]bool
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, exhaustiveMarker) {
				if lines == nil {
					lines = map[int]bool{}
				}
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// checkOpSwitches reports every switch whose tag has type isa.Op and does
// not cover all defined opcodes — either because it has no default clause,
// or because it carries the //opcheck:exhaustive directive.
func checkOpSwitches(fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package) []string {
	var diags []string
	for _, f := range files {
		marked := markedLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			opType := opNamed(info.Types[sw.Tag].Type)
			if opType == nil {
				return true
			}
			line := fset.Position(sw.Pos()).Line
			exhaustive := marked[line] || marked[line-1]
			covered := map[int64]bool{}
			for _, stmt := range sw.Body.List {
				clause := stmt.(*ast.CaseClause)
				if clause.List == nil {
					if !exhaustive {
						return true // default clause: exhaustive by construction
					}
					continue // marked: the default does not count as coverage
				}
				for _, e := range clause.List {
					tv := info.Types[e]
					if tv.Value == nil {
						return true // non-constant case: not analyzable
					}
					if v, ok := constant.Int64Val(tv.Value); ok {
						covered[v] = true
					}
				}
			}
			missing := missingOps(opType, covered)
			if len(missing) > 0 {
				why := "has no default clause and"
				if exhaustive {
					why = "is marked " + exhaustiveMarker + " and"
				}
				diags = append(diags, fmt.Sprintf(
					"%s: switch over %s.Op %s misses: %s",
					fset.Position(sw.Pos()), opType.Obj().Pkg().Name(), why, summarize(missing)))
			}
			return true
		})
	}
	return diags
}

// opNamed returns the isa.Op named type if t is it (or an alias of it).
func opNamed(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Op" || obj.Pkg() == nil || obj.Pkg().Path() != isaPath {
		return nil
	}
	return named
}

// missingOps lists the exported Op constants whose values the switch does
// not cover, in declaration-value order. The unexported numOps sentinel is
// skipped (it is not a real opcode, and is invisible outside isa anyway).
func missingOps(opType *types.Named, covered map[int64]bool) []string {
	type opConst struct {
		name string
		val  int64
	}
	var missing []opConst
	scope := opType.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), opType) {
			continue
		}
		if v, ok := constant.Int64Val(c.Val()); ok && !covered[v] {
			missing = append(missing, opConst{name, v})
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].val < missing[j].val })
	names := make([]string, len(missing))
	for i, m := range missing {
		names[i] = m.name
	}
	return names
}

// summarize keeps diagnostics readable when many opcodes are missing.
func summarize(names []string) string {
	const max = 8
	if len(names) <= max {
		return strings.Join(names, ", ")
	}
	return fmt.Sprintf("%s, ... (%d total)", strings.Join(names[:max], ", "), len(names))
}
