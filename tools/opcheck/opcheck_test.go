package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles opcheck into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "opcheck")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building opcheck: %v\n%s", err, out)
	}
	return tool
}

func runVet(t *testing.T, tool, pattern string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, pattern)
	cmd.Dir = "../.." // repo root
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

// TestRepoIsOpSwitchClean runs opcheck over the whole module via the real
// go vet -vettool protocol: every switch over isa.Op must either have a
// default clause or enumerate all opcodes.
func TestRepoIsOpSwitchClean(t *testing.T) {
	tool := buildTool(t)
	out, err := runVet(t, tool, "./...")
	if err != nil {
		t.Fatalf("go vet -vettool=opcheck ./... failed: %v\n%s", err, out)
	}
}

// TestFlagsNonExhaustiveSwitch checks the fixture package with a gappy
// defaultless switch is flagged through the same protocol.
func TestFlagsNonExhaustiveSwitch(t *testing.T) {
	tool := buildTool(t)
	out, err := runVet(t, tool, "./tools/opcheck/testdata/badswitch")
	if err == nil {
		t.Fatalf("expected vet failure on badswitch fixture, got success:\n%s", out)
	}
	if !strings.Contains(out, "switch over isa.Op has no default clause") {
		t.Fatalf("missing diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "ADD") {
		t.Fatalf("diagnostic should name missing opcodes:\n%s", out)
	}
}

// TestFlagsMarkedSwitchDespiteDefault checks the //opcheck:exhaustive
// directive: a gappy switch with a default clause — normally exempt — is
// still flagged when marked. This is what keeps the Step and driveFast
// dispatch cores honest as the ISA grows.
func TestFlagsMarkedSwitchDespiteDefault(t *testing.T) {
	tool := buildTool(t)
	out, err := runVet(t, tool, "./tools/opcheck/testdata/markedswitch")
	if err == nil {
		t.Fatalf("expected vet failure on markedswitch fixture, got success:\n%s", out)
	}
	if !strings.Contains(out, "is marked opcheck:exhaustive") {
		t.Fatalf("missing directive diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "ADD") {
		t.Fatalf("diagnostic should name missing opcodes:\n%s", out)
	}
}
