// Package badswitch is a fixture for opcheck's negative test: Classify
// switches over isa.Op without a default clause and covers almost nothing,
// so opcheck must flag it. The package is under testdata, so ./... never
// builds it; only the test references it by explicit path.
package badswitch

import "github.com/letgo-hpc/letgo/internal/isa"

// Classify misses most opcodes and has no default clause.
func Classify(op isa.Op) string {
	switch op {
	case isa.NOP:
		return "nop"
	case isa.HALT:
		return "halt"
	}
	return "other"
}
