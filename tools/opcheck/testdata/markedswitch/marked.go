// Package markedswitch is a fixture for opcheck's directive test: Dispatch
// has a default clause — which normally exempts a switch — but carries the
// //opcheck:exhaustive marker, so opcheck must still flag the missing
// opcodes. The package is under testdata, so ./... never builds it; only
// the test references it by explicit path.
package markedswitch

import "github.com/letgo-hpc/letgo/internal/isa"

// Dispatch misses most opcodes behind a default clause.
func Dispatch(op isa.Op) string {
	//opcheck:exhaustive
	switch op {
	case isa.NOP:
		return "nop"
	case isa.HALT:
		return "halt"
	default:
		return "other"
	}
}
